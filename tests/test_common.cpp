// Unit and property tests for the common utilities: width-limited integer
// arithmetic, fixed point, deterministic RNG, bit packing and CRC.
#include <gtest/gtest.h>

#include <cmath>

#include "common/bitpack.hpp"
#include "common/fixed.hpp"
#include "common/ints.hpp"
#include "common/report.hpp"
#include "common/rng.hpp"

namespace dsra {
namespace {

TEST(Ints, WrapToWidthMatchesTwosComplement) {
  EXPECT_EQ(wrap_to_width(0, 8), 0);
  EXPECT_EQ(wrap_to_width(127, 8), 127);
  EXPECT_EQ(wrap_to_width(128, 8), -128);
  EXPECT_EQ(wrap_to_width(255, 8), -1);
  EXPECT_EQ(wrap_to_width(256, 8), 0);
  EXPECT_EQ(wrap_to_width(-1, 8), -1);
  EXPECT_EQ(wrap_to_width(-129, 8), 127);
}

TEST(Ints, WrapIsIdempotent) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const auto v = static_cast<std::int64_t>(rng.next_u64());
    for (const int w : {4, 8, 12, 16, 20, 32}) {
      const std::int64_t once = wrap_to_width(v, w);
      EXPECT_EQ(wrap_to_width(once, w), once);
      EXPECT_TRUE(fits_signed(once, w));
    }
  }
}

TEST(Ints, SaturateClampsToRange) {
  EXPECT_EQ(saturate_to_width(1000, 8), 127);
  EXPECT_EQ(saturate_to_width(-1000, 8), -128);
  EXPECT_EQ(saturate_to_width(5, 8), 5);
}

TEST(Ints, WidthLegality) {
  EXPECT_TRUE(is_legal_width(4));
  EXPECT_TRUE(is_legal_width(32));
  EXPECT_FALSE(is_legal_width(0));
  EXPECT_FALSE(is_legal_width(13));
  EXPECT_FALSE(is_legal_width(36));
  EXPECT_EQ(round_up_to_element(13), 16);
  EXPECT_EQ(round_up_to_element(16), 16);
  EXPECT_EQ(elements_for_width(16), 4);
}

TEST(Ints, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(256), 8);
}

TEST(Fixed, RoundTripWithinHalfUlp) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.next_double() * 2.0 - 1.0;
    for (const int f : {8, 12, 14}) {
      const double back = from_fixed(to_fixed(v, f), f);
      EXPECT_NEAR(back, v, coeff_quant_error(f) + 1e-12);
    }
  }
}

TEST(Fixed, RoundShiftRoundsToNearest) {
  EXPECT_EQ(round_shift(5 << 4, 4), 5);
  EXPECT_EQ(round_shift((5 << 4) + 8, 4), 6);  // ties away from zero at .5
  EXPECT_EQ(round_shift((5 << 4) + 7, 4), 5);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, RangeIsInclusiveAndCoversEndpoints) {
  Rng rng(3);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, GaussianMomentsRoughlyStandard) {
  Rng rng(5);
  double sum = 0.0, sq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.next_gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.1);
}

TEST(BitPack, RoundTripMixedFields) {
  Rng rng(6);
  for (int trial = 0; trial < 100; ++trial) {
    BitWriter w;
    std::vector<std::pair<std::uint64_t, int>> fields;
    for (int i = 0; i < 50; ++i) {
      const int bits = static_cast<int>(rng.next_range(1, 64));
      const std::uint64_t v = rng.next_u64() & low_mask(bits);
      fields.emplace_back(v, bits);
      w.write(v, bits);
    }
    BitReader r(w.bytes());
    for (const auto& [v, bits] : fields) EXPECT_EQ(r.read(bits), v);
    EXPECT_TRUE(r.ok());
  }
}

TEST(BitPack, ReadPastEndFlagsError) {
  BitWriter w;
  w.write(0x5, 3);
  BitReader r(w.bytes());
  (void)r.read(8);  // within the padded byte
  (void)r.read(8);  // past the end
  EXPECT_FALSE(r.ok());
}

TEST(BitPack, AlignToByte) {
  BitWriter w;
  w.write(1, 3);
  w.align_to_byte();
  w.write(0xab, 8);
  EXPECT_EQ(w.bytes().size(), 2u);
  BitReader r(w.bytes());
  EXPECT_EQ(r.read(3), 1u);
  r.align_to_byte();
  EXPECT_EQ(r.read(8), 0xabu);
}

TEST(Crc32, KnownVectorAndSensitivity) {
  // "123456789" -> 0xCBF43926 (standard check value).
  std::vector<std::uint8_t> check = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  check[4] ^= 1;
  EXPECT_NE(crc32(check), 0xCBF43926u);
}

TEST(Report, TableRendersAllCells) {
  ReportTable t("demo");
  t.set_header({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_separator();
  t.add_row({"333", "4"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
  EXPECT_NE(s.find("bb"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Report, Formatters) {
  EXPECT_EQ(format_double(1.2345, 2), "1.23");
  EXPECT_EQ(format_percent(0.756, 1), "75.6%");
  EXPECT_EQ(format_i64(-42), "-42");
}

}  // namespace
}  // namespace dsra
