// Config codec hardening: the single-cluster decoder and the
// frame-addressable format must throw std::runtime_error on any malformed
// input — truncated streams, bad cluster coordinates, overlapping frames,
// hostile length headers — never crash, hang or read out of bounds (the
// ASan+UBSan CI job runs this file instrumented).
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "core/config_codec.hpp"

namespace dsra {
namespace {

std::vector<std::uint8_t> encode_one(const ClusterConfig& cfg) {
  BitWriter w;
  encode_config(cfg, w);
  w.align_to_byte();
  return w.bytes();
}

ClusterConfig decode_one(const std::vector<std::uint8_t>& bytes) {
  BitReader r(bytes);
  return decode_config(r);
}

/// A small mixed image: two DA clusters and a ROM with contents.
ConfigFrameImage sample_image() {
  MemCfg rom;
  rom.words = 16;
  rom.width = 8;
  rom.addr_mode = MemAddrMode::kBit;
  rom.contents.assign(16, 0);
  for (int i = 0; i < 16; ++i) rom.contents[static_cast<std::size_t>(i)] = i * 5 - 40;
  return build_frame_image(
      4, 3,
      {{0, 0, AddShiftCfg{16, AddShiftOp::kAdd, 0, true}},
       {2, 1, AddShiftCfg{16, AddShiftOp::kShiftAccTrunc, 3, false}},
       {3, 2, rom}});
}

/// Re-seal a tampered stream: recompute the CRC over everything but the
/// 4 tail bytes, so corruption tests exercise the *structural* checks
/// behind the CRC, not just the CRC itself.
std::vector<std::uint8_t> reseal(std::vector<std::uint8_t> bytes) {
  bytes.resize(bytes.size() - 4);
  const std::uint32_t crc = crc32(bytes);
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>((crc >> (8 * i)) & 0xff));
  return bytes;
}

TEST(ConfigCodec, SingleClusterRoundTrip) {
  const ClusterConfig cfgs[] = {
      MuxRegCfg{8, true},
      AbsDiffCfg{8, AbsDiffOp::kAbsDiff, false},
      AddAccCfg{16, AddAccOp::kAccumulate, false},
      CompCfg{16, CompOp::kRunMin},
      AddShiftCfg{16, AddShiftOp::kShiftAccTrunc, 3, false},
  };
  for (const ClusterConfig& cfg : cfgs) EXPECT_EQ(decode_one(encode_one(cfg)), cfg);

  // Every AddShift operating mode must survive the codec — kShiftRegLsb
  // is enumerator 8, one past what a 3-bit op field can carry (da_basic
  // really places these clusters, so truncating it to kAdd would corrupt
  // the frame images partial reconfiguration diffs).
  for (int op = 0; op < 9; ++op) {
    const AddShiftCfg cfg{16, static_cast<AddShiftOp>(op), 0, false};
    EXPECT_EQ(decode_one(encode_one(cfg)), ClusterConfig{cfg}) << "op " << op;
  }
}

TEST(ConfigCodec, TruncatedClusterConfigThrows) {
  MemCfg rom;
  rom.words = 16;
  rom.width = 8;
  rom.contents.assign(16, 7);
  const std::vector<std::uint8_t> full = encode_one(rom);
  // Every proper prefix must throw, never return garbage or read OOB.
  for (std::size_t len = 0; len < full.size(); ++len) {
    const std::vector<std::uint8_t> cut(full.begin(),
                                        full.begin() + static_cast<std::ptrdiff_t>(len));
    BitReader r(cut);
    EXPECT_THROW((void)decode_config(r), std::runtime_error) << "prefix " << len;
  }
}

TEST(ConfigCodec, ForgedFieldsThrow) {
  {
    BitWriter w;  // unknown cluster kind 7
    w.write(7, 3);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
  {
    BitWriter w;  // AbsDiff with out-of-range operating mode 5
    w.write(static_cast<std::uint64_t>(ClusterKind::kAbsDiff), 3);
    w.write(8, 6);
    w.write(5, 3);
    w.write(0, 1);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
  {
    BitWriter w;  // illegal width 7 (not an element multiple)
    w.write(static_cast<std::uint64_t>(ClusterKind::kMuxReg), 3);
    w.write(7, 6);
    w.write(0, 1);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
  {
    BitWriter w;  // memory geometry 2^31 words: a gigabyte allocation bomb
    w.write(static_cast<std::uint64_t>(ClusterKind::kMem), 3);
    w.write(31, 5);
    w.write(8, 6);
    w.write(0, 1);
    w.write(0, 1);
    w.write(0, 1);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
  {
    BitWriter w;  // AddShift with shift 40 >= width 16 (op field is 4 bits)
    w.write(static_cast<std::uint64_t>(ClusterKind::kAddShift), 3);
    w.write(16, 6);
    w.write(static_cast<std::uint64_t>(AddShiftOp::kShiftLeft), 4);
    w.write(40, 6);
    w.write(0, 1);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
  {
    BitWriter w;  // AddShift operating mode 9: one past the last enumerator
    w.write(static_cast<std::uint64_t>(ClusterKind::kAddShift), 3);
    w.write(16, 6);
    w.write(9, 4);
    w.write(0, 6);
    w.write(0, 1);
    w.align_to_byte();
    BitReader r(w.bytes());
    EXPECT_THROW((void)decode_config(r), std::runtime_error);
  }
}

TEST(ConfigFrames, RoundTripAndCanonicalOrder) {
  const ConfigFrameImage image = sample_image();
  EXPECT_EQ(image.frames.size(), 3u);
  // build_frame_image sorts into (y, x) order regardless of input order.
  EXPECT_EQ(image.frames[0].y, 0);
  EXPECT_EQ(image.frames[2].y, 2);

  const std::vector<std::uint8_t> bytes = encode_config_frames(image);
  const ConfigFrameImage back = decode_config_frames(bytes);
  EXPECT_EQ(back, image);
  EXPECT_GT(image.payload_bytes(), 0u);
}

TEST(ConfigFrames, EncodeRejectsFieldsTheHeadersCannotStore) {
  // A legal MemCfg can carry more contents than the 16-bit length header
  // stores (2^14 words x 32 bits = 64 KiB); the encoder must refuse
  // instead of silently truncating the field and CRC-sealing the wreck.
  MemCfg huge;
  huge.words = 1 << 14;
  huge.width = 32;
  huge.contents.assign(static_cast<std::size_t>(huge.words), 123);
  const ConfigFrameImage image = build_frame_image(2, 2, {{0, 0, huge}});
  EXPECT_THROW((void)encode_config_frames(image), std::invalid_argument);

  ConfigDelta delta;
  delta.width = delta.height = 2;
  delta.rewrites = image.frames;
  EXPECT_THROW((void)encode_config_delta(delta), std::invalid_argument);

  // Grid dimensions past the 16-bit field: buildable (coordinates still
  // fit), but not serialisable — reject at encode, not decode.
  ConfigFrameImage wide;
  wide.width = 1 << 16;
  wide.height = 1;
  EXPECT_THROW((void)encode_config_frames(wide), std::invalid_argument);
}

TEST(ConfigFrames, BuildRejectsBadPlacements) {
  EXPECT_THROW((void)build_frame_image(0, 3, {}), std::invalid_argument);
  EXPECT_THROW((void)build_frame_image(2, 2, {{2, 0, MuxRegCfg{8, false}}}),
               std::invalid_argument);
  EXPECT_THROW((void)build_frame_image(2, 2,
                                       {{1, 1, MuxRegCfg{8, false}},
                                        {1, 1, CompCfg{16, CompOp::kMin2}}}),
               std::invalid_argument);
}

TEST(ConfigFrames, TruncatedStreamsThrow) {
  const std::vector<std::uint8_t> bytes = encode_config_frames(sample_image());
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_config_frames(cut), std::runtime_error) << "prefix " << len;
  }
}

TEST(ConfigFrames, BadCoordinatesAndOverlapsThrow) {
  // Header layout (byte-aligned): magic[4] version[1] width[2] height[2]
  // count[2], then frames of x[2] y[2] len[2] payload. Tamper and re-seal
  // so the CRC passes and the structural validation must catch it.
  const std::vector<std::uint8_t> good = encode_config_frames(sample_image());

  {
    std::vector<std::uint8_t> bad = good;  // frame 0 x-coordinate := 9 (grid is 4 wide)
    bad[11] = 9;
    EXPECT_THROW((void)decode_config_frames(reseal(std::move(bad))), std::runtime_error);
  }
  {
    // Overlap: point frame 1 at frame 0's tile. Frame 0 spans bytes
    // 11..16 + payload; find frame 1's x offset by decoding frame 0's len.
    std::vector<std::uint8_t> bad = good;
    const std::size_t len0 = bad[15] | (static_cast<std::size_t>(bad[16]) << 8);
    const std::size_t frame1 = 11 + 6 + len0;
    bad[frame1 + 0] = bad[11];
    bad[frame1 + 1] = bad[12];
    bad[frame1 + 2] = bad[13];
    bad[frame1 + 3] = bad[14];
    EXPECT_THROW((void)decode_config_frames(reseal(std::move(bad))), std::runtime_error);
  }
  {
    std::vector<std::uint8_t> bad = good;  // hostile length header on frame 0
    bad[15] = 0xff;
    bad[16] = 0xff;
    EXPECT_THROW((void)decode_config_frames(reseal(std::move(bad))), std::runtime_error);
  }
  {
    std::vector<std::uint8_t> bad = good;  // grid forged to 0x0
    bad[5] = bad[6] = bad[7] = bad[8] = 0;
    EXPECT_THROW((void)decode_config_frames(reseal(std::move(bad))), std::runtime_error);
  }
}

TEST(ConfigFrames, LengthHeaderFuzzLoopNeverCrashes) {
  // Random byte mutations, CRC re-sealed so the deeper validation runs:
  // every outcome must be "decodes" or "throws std::runtime_error" — no
  // UB, no unbounded allocation, no other exception type.
  const std::vector<std::uint8_t> good = encode_config_frames(sample_image());
  Rng rng(2026);
  int threw = 0, decoded = 0;
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> bytes = good;
    const int mutations = 1 + static_cast<int>(rng.next_below(4));
    for (int m = 0; m < mutations; ++m) {
      const std::size_t pos = rng.next_below(bytes.size() - 4);
      bytes[pos] = static_cast<std::uint8_t>(rng.next_u64());
    }
    try {
      (void)decode_config_frames(reseal(std::move(bytes)));
      ++decoded;
    } catch (const std::runtime_error&) {
      ++threw;
    }
  }
  EXPECT_GT(threw, 0) << "mutations never tripped the validation";
  EXPECT_EQ(threw + decoded, 2000);

  // The same loop without re-sealing: the CRC front line must hold.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> bytes = good;
    bytes[rng.next_below(bytes.size())] ^= static_cast<std::uint8_t>(1 + rng.next_below(255));
    EXPECT_THROW((void)decode_config_frames(bytes), std::runtime_error);
  }
}

TEST(ConfigDeltaCodec, DeltaStreamRoundTripAndValidation) {
  const ConfigFrameImage base = sample_image();
  ConfigFrameImage target = base;
  target.frames[0].payload = encode_one(AddShiftCfg{16, AddShiftOp::kSub, 0, true});
  target.frames.erase(target.frames.begin() + 1);

  const ConfigDelta delta = diff_config_frames(base, target);
  EXPECT_EQ(delta.rewrites.size(), 1u);
  EXPECT_EQ(delta.clears.size(), 1u);

  const std::vector<std::uint8_t> bytes = encode_config_delta(delta);
  EXPECT_EQ(decode_config_delta(bytes), delta);
  EXPECT_EQ(config_delta_bits(delta), bytes.size() * 8);

  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const std::vector<std::uint8_t> cut(bytes.begin(),
                                        bytes.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_THROW((void)decode_config_delta(cut), std::runtime_error);
  }
  // A delta is not a frame image and vice versa (magic check).
  EXPECT_THROW((void)decode_config_frames(bytes), std::runtime_error);
  EXPECT_THROW((void)decode_config_delta(encode_config_frames(base)), std::runtime_error);
}

}  // namespace
}  // namespace dsra
