// Cost models: area accounting, activity-based power, FPGA baseline
// decomposition and the fabric comparison mechanics.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cost/compare.hpp"
#include "dct/impl.hpp"

namespace dsra::cost {
namespace {

TEST(Area, ClusterAreaScalesWithWidthAndMemoryBits) {
  EXPECT_LT(cluster_area(AddShiftCfg{8, AddShiftOp::kAdd, 0, false}),
            cluster_area(AddShiftCfg{32, AddShiftOp::kAdd, 0, false}));
  MemCfg small;
  small.words = 16;
  small.width = 8;
  MemCfg big;
  big.words = 256;
  big.width = 8;
  EXPECT_LT(cluster_area(small), cluster_area(big));
}

TEST(Area, DesignAreaDecomposesAndCountsClusters) {
  const Netlist nl = dct::make_mixed_rom()->build_netlist();
  const AreaReport r = domain_design_area(nl, ChannelSpec{4, 8});
  EXPECT_EQ(r.clusters, 32);  // Table 1 column
  EXPECT_GT(r.cluster_area, 0.0);
  EXPECT_GT(r.routing_area, 0.0);
  EXPECT_GT(r.config_bits, 0);
  EXPECT_NEAR(r.total(), r.cluster_area + r.routing_area + r.config_area, 1e-9);
}

TEST(Area, MoreTracksCostMoreArea) {
  const Netlist nl = dct::make_da_basic()->build_netlist();
  const AreaReport narrow = domain_design_area(nl, ChannelSpec{2, 4});
  const AreaReport wide = domain_design_area(nl, ChannelSpec{8, 16});
  EXPECT_LT(narrow.routing_area, wide.routing_area);
  EXPECT_LT(narrow.config_bits, wide.config_bits);
}

TEST(Area, FabricAreaCoversAllSites) {
  const ArrayArch arch = ArrayArch::distributed_arithmetic(8, 8);
  const AreaReport fabric = domain_fabric_area(arch);
  EXPECT_EQ(fabric.clusters, arch.tile_count());
  EXPECT_GT(fabric.total(), 0.0);
}

TEST(Fpga, DecompositionTracksOperationComplexity) {
  // An absolute difference needs more LUTs than a plain adder of the same
  // width; a 256-word memory more than a 16-word one.
  const LutDecomposition add = decompose(AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  const LutDecomposition ad = decompose(AbsDiffCfg{16, AbsDiffOp::kAbsDiff, false});
  EXPECT_GT(ad.luts, add.luts);
  EXPECT_GT(ad.lut_levels, add.lut_levels);
  // Small ROMs are distributed LUT-ROM; large ones map to block RAM.
  MemCfg small;
  small.words = 16;
  small.width = 8;
  MemCfg big;
  big.words = 256;
  big.width = 8;
  EXPECT_GT(decompose(small).luts, 0);
  EXPECT_EQ(decompose(small).bram_bits, 0);
  EXPECT_TRUE(decompose(big).uses_bram);
  EXPECT_EQ(decompose(big).bram_bits, 256 * 8);
  // Constant shifts are free wiring on an FPGA.
  EXPECT_EQ(decompose(AddShiftCfg{16, AddShiftOp::kShiftLeft, 3, false}).luts, 0);
}

TEST(Fpga, MappingAggregatesAndPacksClbs) {
  const Netlist nl = dct::make_cordic1()->build_netlist();
  const FpgaMapping m = map_to_fpga(nl);
  EXPECT_GT(m.luts, 0);
  EXPECT_GT(m.ffs, 0);
  EXPECT_GE(m.clbs * fpga_cost().luts_per_clb, std::max(m.luts, m.ffs));
  EXPECT_GT(m.config_bits, 0);
}

TEST(Power, ScalesWithActivityAndFrequency) {
  auto impl = dct::make_da_basic();
  const Netlist nl = impl->build_netlist();
  Simulator sim(nl);
  Rng rng(3);
  dct::IVec8 x{};
  for (int t = 0; t < 8; ++t) {
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    (void)dct::run_da_transform(sim, x, impl->serial_width());
  }
  const AreaReport area = domain_design_area(nl, ChannelSpec{4, 8});
  const PowerReport p100 = domain_power(nl, sim, nullptr, 100.0, area);
  const PowerReport p200 = domain_power(nl, sim, nullptr, 200.0, area);
  EXPECT_GT(p100.total(), 0.0);
  // Dynamic parts double with frequency; leakage does not.
  EXPECT_NEAR(p200.interconnect_mw, 2.0 * p100.interconnect_mw, 1e-9);
  EXPECT_NEAR(p200.leakage_mw, p100.leakage_mw, 1e-9);

  // An idle design (no transforms) burns only clock/leakage.
  Simulator idle(nl);
  idle.run(100);
  const PowerReport pi = domain_power(nl, idle, nullptr, 100.0, area);
  EXPECT_LT(pi.total(), p100.total());
}

TEST(Compare, DomainArrayBeatsFpgaOnPowerForDctWorkload) {
  auto impl = dct::make_da_basic();
  const Netlist nl = impl->build_netlist();
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  const map::CompiledDesign design = map::compile(nl, arch, map::FlowParams{});

  Simulator sim(nl);
  Rng rng(4);
  dct::IVec8 x{};
  for (int t = 0; t < 16; ++t) {
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    (void)dct::run_da_transform(sim, x, impl->serial_width());
  }
  const FabricComparison cmp = compare_fabrics(nl, design, sim, 100.0, arch.channels());
  EXPECT_GT(cmp.fpga.power_mw, 0.0);
  EXPECT_GT(cmp.domain.power_mw, 0.0);
  EXPECT_GT(cmp.power_reduction(), 0.0) << "domain array must use less power";
  EXPECT_GT(cmp.area_reduction(), 0.0) << "domain array must use less area";
}

}  // namespace
}  // namespace dsra::cost
