// The truncating LSB-first shift-accumulator (the real form of Fig 4's
// 16-bit accumulator): cluster semantics, bit-exact netlist equivalence,
// and the accuracy trade against the exact MSB-first accumulator.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "dct/impl.hpp"
#include "dct/reference.hpp"

namespace dsra::dct {
namespace {

TEST(ShiftRegLsb, SerialisesLsbFirst) {
  const AddShiftCfg cfg{8, AddShiftOp::kShiftRegLsb, 0, false};
  ClusterState st;
  st.reset(cfg);
  eval_seq(cfg, st, std::vector<std::int64_t>{wrap_to_width(0b10110010, 8), 1, 0});
  std::string bits;
  for (int k = 0; k < 8; ++k) {
    std::vector<std::int64_t> out(1, 0);
    eval_comb(cfg, st, std::vector<std::int64_t>{0, 0, 1}, out);
    bits += out[0] ? '1' : '0';
    eval_seq(cfg, st, std::vector<std::int64_t>{0, 0, 1});
  }
  EXPECT_EQ(bits, "01001101");  // LSB first
}

TEST(ShiftAccTrunc, IdentityLutRecoversScaledValue) {
  // DA over one input with coefficient 1: result = v * 2^(s - B + 1),
  // up to truncation.
  Rng rng(3);
  const int width = 10, acc_bits = 24, s = 12;
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t v = rng.next_range(-(1ll << 9), (1ll << 9) - 1);
    const std::vector<std::int64_t> lut = {0, 1};
    const std::array<std::int64_t, 1> in = {wrap_to_width(v, width)};
    const std::int64_t got = da_eval_trunc(lut, in, width, acc_bits, s);
    const double scale = std::ldexp(1.0, s - width + 1);
    EXPECT_NEAR(static_cast<double>(got), static_cast<double>(v) * scale, 2.0) << v;
  }
}

TEST(ShiftAccTrunc, TracksExactDaWithinTwoUlps) {
  Rng rng(4);
  for (int trial = 0; trial < 300; ++trial) {
    // Random 4-coefficient LUT, 12-bit inputs.
    std::vector<std::int64_t> coeffs(4);
    for (auto& c : coeffs) c = rng.next_range(-100, 100);
    const auto lut = build_da_lut(coeffs, 12);
    std::array<std::int64_t, 4> in{};
    for (auto& v : in) v = rng.next_range(-2048, 2047);
    const int ws = 12, s = 10;
    const std::int64_t exact = da_eval(lut, in, ws, 32);
    const std::int64_t trunc = da_eval_trunc(lut, in, ws, 32, s);
    const double scale = std::ldexp(1.0, s - ws + 1);
    EXPECT_NEAR(static_cast<double>(trunc), static_cast<double>(exact) * scale, 2.0);
  }
}

TEST(ShiftAccTrunc, SixteenBitAccumulatorMatchesFig4Labels) {
  // Fig 4: 12-bit inputs, 8-bit ROM words, *16-bit* shift-accumulator.
  // With addend shift 7 the datapath fits and the output approximates the
  // exact DA value / 2^4.
  Rng rng(5);
  const Mat8& m = dct8_matrix();
  std::vector<double> row(m[1].begin(), m[1].end());
  const auto lut = build_da_lut(quantize_row(row, 5), 8);  // 8-bit ROM
  double worst = 0.0;
  for (int trial = 0; trial < 200; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    const std::int64_t exact = da_eval(lut, x, 12, 32);
    const std::int64_t t16 = da_eval_trunc(lut, x, 12, 16, 7);
    const double scale = std::ldexp(1.0, 7 - 12 + 1);  // 2^-4
    worst = std::max(worst,
                     std::abs(static_cast<double>(t16) - static_cast<double>(exact) * scale));
  }
  EXPECT_LT(worst, 2.5) << "16-bit truncating accumulator must stay within ~2 ulps";
}

TEST(ShiftAccTrunc, NetlistMatchesFunctionalMirrorBitExactly) {
  // kShiftRegLsb -> 4-word ROM -> kShiftAccTrunc on the simulator vs
  // da_eval_trunc.
  const int ws = 12, acc_bits = 16, s = 7;
  std::vector<std::int64_t> coeffs = {37, -21};
  const auto lut = build_da_lut(coeffs, 8);

  Netlist nl("trunc_da");
  const NetId load = nl.add_input("load", 1);
  const NetId en = nl.add_input("en", 1);
  const NetId sub = nl.add_input("sub", 1);
  std::vector<NetId> bits;
  for (int i = 0; i < 2; ++i) {
    const NetId x = nl.add_input("x" + std::to_string(i), ws);
    const NodeId sr = nl.add_node("sr" + std::to_string(i),
                                  AddShiftCfg{ws, AddShiftOp::kShiftRegLsb, 0, false});
    nl.connect_input(sr, "d", x);
    nl.connect_input(sr, "load", load);
    nl.connect_input(sr, "en", en);
    bits.push_back(nl.output_net(sr, "q"));
  }
  MemCfg mem;
  mem.words = 4;
  mem.width = 8;
  mem.addr_mode = MemAddrMode::kBit;
  mem.contents = lut;
  const NodeId rom = nl.add_node("rom", mem);
  nl.connect_input(rom, "a0", bits[0]);
  nl.connect_input(rom, "a1", bits[1]);
  const NodeId acc = nl.add_node("acc", AddShiftCfg{acc_bits, AddShiftOp::kShiftAccTrunc, s, false});
  nl.connect_input(acc, "a", nl.output_net(rom, "q"));
  nl.connect_input(acc, "clr", load);
  nl.connect_input(acc, "en", en);
  nl.connect_input(acc, "sub", sub);
  nl.add_output("y", nl.output_net(acc, "y"));
  ASSERT_EQ(nl.validate(), "");

  Simulator sim(nl);
  Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    std::array<std::int64_t, 2> x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    sim.set_input("x0", x[0]);
    sim.set_input("x1", x[1]);
    sim.set_input("load", 1);
    sim.set_input("en", 0);
    sim.set_input("sub", 0);
    sim.step();
    sim.set_input("load", 0);
    sim.set_input("en", 1);
    // LSB-first: the sign (MSB) strobe fires on the LAST serial cycle.
    for (int k = 0; k < ws; ++k) {
      sim.set_input("sub", k == ws - 1 ? 1 : 0);
      sim.step();
    }
    EXPECT_EQ(sim.output("y"), da_eval_trunc(lut, x, ws, acc_bits, s)) << trial;
  }
}

TEST(Fig4Exact, SameClusterBudgetAsBasicDa) {
  auto impl = make_da_basic_fig4_exact();
  const ClusterCensus c = impl->build_netlist().census();
  EXPECT_EQ(c.shift_regs, 8);
  EXPECT_EQ(c.accumulators, 8);
  EXPECT_EQ(c.mem_clusters, 8);
  EXPECT_EQ(c.total(), 24);
  // Exactly the widths Fig 4 labels.
  EXPECT_EQ(impl->precision().input_bits, 12);
  EXPECT_EQ(impl->precision().rom_width, 8);
}

TEST(Fig4Exact, ArraySimulationMatchesModelBitExactly) {
  auto impl = make_da_basic_fig4_exact();
  const Netlist nl = impl->build_netlist();
  ASSERT_EQ(nl.validate(), "");
  Simulator sim(nl);
  Rng rng(9);
  for (int trial = 0; trial < 25; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    const IVec8 want = impl->transform(x);
    const IVec8 got = run_da_transform(sim, x, impl->serial_width(), /*lsb_first=*/true);
    for (int u = 0; u < kN; ++u)
      ASSERT_EQ(got[static_cast<std::size_t>(u)], want[static_cast<std::size_t>(u)]) << u;
  }
}

TEST(Fig4Exact, AccuracyDominatedByRomQuantisationNotTruncation) {
  // The 16-bit truncating accumulator loses at most ~2 ulps; the 8-bit ROM
  // quantisation dominates the error, so the exact-labels datapath tracks
  // the (already approximate) 8-bit-ROM MSB-first variant closely.
  auto exact_labels = make_da_basic_fig4_exact();
  auto msb_variant = make_da_basic(DaPrecision::paper());
  Rng rng(10);
  double worst = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    const Vec8 a = exact_labels->transform_real(x);
    const Vec8 b = msb_variant->transform_real(x);
    for (int u = 0; u < kN; ++u)
      worst = std::max(worst, std::abs(a[static_cast<std::size_t>(u)] -
                                       b[static_cast<std::size_t>(u)]));
  }
  EXPECT_LT(worst, 3.0);
}

TEST(ShiftAccTrunc, CensusCountsAsAccumulator) {
  Netlist nl("t");
  (void)nl.add_node("a", AddShiftCfg{16, AddShiftOp::kShiftAccTrunc, 7, false});
  (void)nl.add_node("b", AddShiftCfg{16, AddShiftOp::kShiftRegLsb, 0, false});
  EXPECT_EQ(nl.census().accumulators, 1);
  EXPECT_EQ(nl.census().shift_regs, 1);
}

}  // namespace
}  // namespace dsra::dct
