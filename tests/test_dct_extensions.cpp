// The DA array's wider workload claims (paper section 2.2: "filtering, DCT
// and DWT"): inverse DCT, DA FIR filtering and a Haar DWT stage - each as
// a functional model and a netlist simulated on the fabric.
#include <gtest/gtest.h>

#include <cmath>

#include "common/fixed.hpp"
#include "common/rng.hpp"
#include "dct/extensions.hpp"
#include "dct/impl.hpp"
#include "mapper/flow.hpp"

namespace dsra::dct {
namespace {

TEST(DaIdct, InvertsTheForwardTransform) {
  // forward (array impl) -> inverse (array IDCT) recovers the input within
  // the combined quantisation error.
  auto fwd = make_da_basic();
  DaIdct inv;
  Rng rng(1);
  const int f = fwd->precision().coeff_frac_bits;
  for (int trial = 0; trial < 100; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-900, 900);
    const IVec8 coeffs = fwd->transform(x);
    // Rescale raw forward outputs (x 2^f) back to the IDCT's input width.
    IVec8 scaled{};
    for (int u = 0; u < kN; ++u)
      scaled[static_cast<std::size_t>(u)] = round_shift(coeffs[static_cast<std::size_t>(u)], f);
    const IVec8 back = inv.inverse(scaled);
    for (int i = 0; i < kN; ++i) {
      const double got = from_fixed(back[static_cast<std::size_t>(i)], f);
      EXPECT_NEAR(got, static_cast<double>(x[static_cast<std::size_t>(i)]), 3.0) << i;
    }
  }
}

TEST(DaIdct, NetlistMatchesModelAndCompiles) {
  DaIdct inv;
  const Netlist nl = inv.build_netlist();
  ASSERT_EQ(nl.validate(), "");
  // Same resource budget family as the forward transform.
  const ClusterCensus c = nl.census();
  EXPECT_EQ(c.shift_regs, 8);
  EXPECT_EQ(c.accumulators, 8);
  EXPECT_EQ(c.mem_clusters, 8);

  Simulator sim(nl);
  Rng rng(2);
  for (int trial = 0; trial < 10; ++trial) {
    IVec8 coeffs{};
    for (auto& v : coeffs) v = rng.next_range(-2048, 2047);
    // Drive X0..X7 and run the DA schedule manually (ports differ from
    // the forward runner's x0..x7).
    for (int u = 0; u < kN; ++u)
      sim.set_input("X" + std::to_string(u), coeffs[static_cast<std::size_t>(u)]);
    sim.set_input("load", 1);
    sim.set_input("en", 0);
    sim.set_input("sub", 0);
    sim.step();
    sim.set_input("load", 0);
    sim.set_input("en", 1);
    for (int k = 0; k < inv.serial_width(); ++k) {
      sim.set_input("sub", k == 0 ? 1 : 0);
      sim.step();
    }
    const IVec8 want = inv.inverse(coeffs);
    for (int i = 0; i < kN; ++i)
      ASSERT_EQ(sim.output("x" + std::to_string(i)), want[static_cast<std::size_t>(i)]) << i;
  }

  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  const map::CompiledDesign design = map::compile(nl, arch, map::FlowParams{});
  EXPECT_TRUE(design.routes.success);
}

TEST(DaFir, MatchesDirectConvolution) {
  const std::vector<double> taps = {0.25, 0.5, 0.25};  // smoothing kernel
  DaFirFilter fir(taps);
  Rng rng(3);
  std::vector<std::int64_t> x(64);
  for (auto& v : x) v = rng.next_range(-2000, 2000);
  const auto y = fir.filter(x);
  ASSERT_EQ(y.size(), x.size());
  const int f = DaPrecision::wide().coeff_frac_bits;
  for (std::size_t n = 0; n < x.size(); ++n) {
    double want = 0.0;
    for (std::size_t k = 0; k < taps.size(); ++k)
      if (n >= k) want += taps[k] * static_cast<double>(x[n - k]);
    EXPECT_NEAR(from_fixed(y[n], f), want, 0.5) << n;
  }
}

TEST(DaFir, ImpulseResponseIsTheTapVector) {
  const std::vector<double> taps = {1.0, -0.5, 0.25, -0.125};
  DaFirFilter fir(taps);
  std::vector<std::int64_t> impulse(8, 0);
  impulse[0] = 1000;
  const auto y = fir.filter(impulse);
  const int f = DaPrecision::wide().coeff_frac_bits;
  for (std::size_t k = 0; k < taps.size(); ++k)
    EXPECT_NEAR(from_fixed(y[k], f), taps[k] * 1000.0, 0.2) << k;
  for (std::size_t k = taps.size(); k < y.size(); ++k)
    EXPECT_NEAR(from_fixed(y[k], f), 0.0, 0.2) << k;
}

TEST(DaFir, NetlistStreamsSamplesBitExactly) {
  const std::vector<double> taps = {0.4, -0.3, 0.2};
  DaFirFilter fir(taps);
  const Netlist nl = fir.build_netlist();
  ASSERT_EQ(nl.validate(), "");
  const ClusterCensus c = nl.census();
  EXPECT_EQ(c.mux_regs, 3);    // delay line
  EXPECT_EQ(c.shift_regs, 3);  // P2S per tap
  EXPECT_EQ(c.accumulators, 1);
  EXPECT_EQ(c.mem_clusters, 1);

  Simulator sim(nl);
  Rng rng(4);
  std::vector<std::int64_t> x(20);
  for (auto& v : x) v = rng.next_range(-2000, 2000);
  const auto want = fir.filter(x);

  for (std::size_t n = 0; n < x.size(); ++n) {
    sim.set_input("x", x[n]);
    // advance the delay line
    sim.set_input("advance", 1);
    sim.set_input("load", 0);
    sim.set_input("en", 0);
    sim.set_input("sub", 0);
    sim.step();
    sim.set_input("advance", 0);
    // latch the P2S registers / clear the accumulator
    sim.set_input("load", 1);
    sim.step();
    sim.set_input("load", 0);
    sim.set_input("en", 1);
    for (int k = 0; k < fir.serial_width(); ++k) {
      sim.set_input("sub", k == 0 ? 1 : 0);
      sim.step();
    }
    sim.set_input("en", 0);
    ASSERT_EQ(sim.output("y"), want[n]) << "sample " << n;
  }
}

TEST(HaarStage, MatchesReferenceAndReconstructs) {
  const int width = 16;
  const Netlist nl = build_haar_stage_netlist(width);
  ASSERT_EQ(nl.validate(), "");
  Simulator sim(nl);
  Rng rng(5);
  for (int trial = 0; trial < 200; ++trial) {
    const std::int64_t a = rng.next_range(-10000, 10000);
    const std::int64_t b = rng.next_range(-10000, 10000);
    sim.set_input("a", a);
    sim.set_input("b", b);
    sim.eval();
    const auto [s, d] = haar_stage(a, b, width);
    EXPECT_EQ(sim.output("s"), s);
    EXPECT_EQ(sim.output("d"), d);
    // The arithmetic shift floors, so a+b == 2s + lsb(a+b): together with
    // d = a-b this makes the integer stage perfectly reconstructible.
    EXPECT_EQ(2 * s + ((a + b) & 1), a + b);
  }
}

TEST(HaarStage, CascadeComputesMultiLevelAverages) {
  // Two Haar levels over 4 samples: the final approximation is the mean
  // (within truncation).
  const int width = 20;
  const std::array<std::int64_t, 4> x = {100, 120, 80, 60};
  const auto [s0, d0] = haar_stage(x[0], x[1], width);
  const auto [s1, d1] = haar_stage(x[2], x[3], width);
  const auto [s2, d2] = haar_stage(s0, s1, width);
  EXPECT_NEAR(static_cast<double>(s2), (100 + 120 + 80 + 60) / 4.0, 1.5);
  EXPECT_EQ(d0, 100 - 120);
  EXPECT_EQ(d1, 80 - 60);
  (void)d2;
}

}  // namespace
}  // namespace dsra::dct
