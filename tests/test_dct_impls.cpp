// Functional correctness of the six DCT implementations (Figs 4-9):
// accuracy against the double-precision reference, bit-exactness of the
// DA machinery, scaling metadata, and Table 1 resource counts.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dct/impl.hpp"
#include "dct/reference.hpp"

namespace dsra::dct {
namespace {

IVec8 random_block(Rng& rng, int bits) {
  IVec8 x{};
  const std::int64_t hi = (1ll << (bits - 1)) - 1;
  for (auto& v : x) v = rng.next_range(-hi - 1, hi);
  return x;
}

class DctImplTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<DctImplementation> make() const {
    auto impls = all_implementations(DaPrecision::wide());
    return std::move(impls[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(DctImplTest, MatchesReferenceOnRandomInputs) {
  auto impl = make();
  Rng rng(42 + static_cast<std::uint64_t>(GetParam()));
  // Error bound: coefficient quantisation (2^-f per coeff, 8 coeffs, inputs
  // up to 2^11) plus margin for the fold stages.
  const double tol =
      8.0 * 2048.0 / std::pow(2.0, impl->precision().coeff_frac_bits) * 2.0 + 1e-6;
  for (int trial = 0; trial < 200; ++trial) {
    const IVec8 x = random_block(rng, impl->precision().input_bits);
    Vec8 xd{};
    for (int i = 0; i < kN; ++i) xd[static_cast<std::size_t>(i)] = static_cast<double>(x[static_cast<std::size_t>(i)]);
    const Vec8 want = dct8(xd);
    const Vec8 got = impl->transform_real(x);
    for (int u = 0; u < kN; ++u)
      ASSERT_NEAR(got[static_cast<std::size_t>(u)], want[static_cast<std::size_t>(u)], tol)
          << impl->name() << " output " << u << " trial " << trial;
  }
}

TEST_P(DctImplTest, DcInputProducesDcOnlyOutput) {
  auto impl = make();
  IVec8 x{};
  x.fill(100);
  const Vec8 got = impl->transform_real(x);
  // X0 = sqrt(8) * 100, all others ~0.
  EXPECT_NEAR(got[0], std::sqrt(8.0) * 100.0, 1.0);
  for (int u = 1; u < kN; ++u) EXPECT_NEAR(got[static_cast<std::size_t>(u)], 0.0, 1.0) << u;
}

TEST_P(DctImplTest, LinearityHoldsInRawDomain) {
  auto impl = make();
  Rng rng(7);
  // The datapath is linear in the inputs (no rounding between stages in
  // wide mode): T(a) + T(b) == T(a+b) when no overflow occurs, up to the
  // constant rounding offset CORDIC2 injects once per transform.
  for (int trial = 0; trial < 50; ++trial) {
    IVec8 a = random_block(rng, 10), b = random_block(rng, 10), sum{};
    for (int i = 0; i < kN; ++i)
      sum[static_cast<std::size_t>(i)] = a[static_cast<std::size_t>(i)] + b[static_cast<std::size_t>(i)];
    const IVec8 ta = impl->transform(a), tb = impl->transform(b), ts = impl->transform(sum);
    const IVec8 zero_out = impl->transform(IVec8{});
    for (int u = 0; u < kN; ++u)
      ASSERT_EQ(ts[static_cast<std::size_t>(u)] + zero_out[static_cast<std::size_t>(u)],
                ta[static_cast<std::size_t>(u)] + tb[static_cast<std::size_t>(u)])
          << impl->name() << " output " << u;
  }
}

TEST_P(DctImplTest, ZeroInputGivesRoundingOffsetOnly) {
  auto impl = make();
  const IVec8 out = impl->transform(IVec8{});
  for (int u = 0; u < kN; ++u)
    EXPECT_NEAR(impl->to_real(u, out[static_cast<std::size_t>(u)]), 0.0, 1e-9)
        << impl->name() << " output " << u;
}

TEST_P(DctImplTest, NetlistIsValid) {
  auto impl = make();
  const Netlist nl = impl->build_netlist();
  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.inputs().size() >= 11u, true);  // x0..x7 + load/en/sub
  EXPECT_EQ(nl.outputs().size(), 8u);
}

std::string impl_name_of(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"da_basic", "mixed_rom",    "cordic1",
                                "cordic2",  "scc_even_odd", "scc_full"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSix, DctImplTest, ::testing::Range(0, 6), impl_name_of);

// --- Table 1 (the paper's area-usage table) ------------------------------

struct Table1Row {
  const char* impl;
  int adders, subtracters, shift_regs, accs, mems, total;
};

TEST(Table1, ClusterCountsMatchThePaperExactly) {
  // Paper Table 1 columns; da_basic (Fig 4) is not a column but must match
  // the basic-DA budget (same as SCC).
  const Table1Row rows[] = {
      {"da_basic", 0, 0, 8, 8, 8, 24},
      {"mixed_rom", 4, 4, 8, 8, 8, 32},
      {"cordic1", 8, 8, 8, 12, 12, 48},
      {"cordic2", 10, 10, 6, 6, 6, 38},
      {"scc_even_odd", 4, 4, 8, 8, 8, 32},
      {"scc_full", 0, 0, 8, 8, 8, 24},
  };
  auto impls = all_implementations();
  ASSERT_EQ(impls.size(), 6u);
  for (std::size_t k = 0; k < impls.size(); ++k) {
    const auto census = impls[k]->build_netlist().census();
    const Table1Row& want = rows[k];
    EXPECT_EQ(impls[k]->name(), want.impl);
    EXPECT_EQ(census.adders, want.adders) << want.impl;
    EXPECT_EQ(census.subtracters, want.subtracters) << want.impl;
    EXPECT_EQ(census.shift_regs, want.shift_regs) << want.impl;
    EXPECT_EQ(census.accumulators, want.accs) << want.impl;
    EXPECT_EQ(census.mem_clusters, want.mems) << want.impl;
    EXPECT_EQ(census.total(), want.total) << want.impl;
  }
}

TEST(Table1, SccFullUsesSixteenTimesTheRomOfSccEvenOdd) {
  // Paper: "The implementation requires 256 words ROM which is 16 times
  // more than the previous implementation".
  const auto eo = make_scc_even_odd()->build_netlist();
  const auto full = make_scc_full()->build_netlist();
  EXPECT_EQ(full.rom_bits(), 16 * eo.rom_bits());
}

TEST(Table1, CyclesPerTransformTrackSerialWidth) {
  for (const auto& impl : all_implementations()) {
    EXPECT_EQ(impl->cycles_per_transform(), impl->serial_width() + 1) << impl->name();
    EXPECT_GE(impl->serial_width(), impl->precision().input_bits) << impl->name();
  }
}

}  // namespace
}  // namespace dsra::dct
