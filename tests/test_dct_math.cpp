// Mathematical foundations: reference DCT properties, the SCC index-mapping
// number theory, the CORDIC primitive, the 2-D transform and the
// paper-precision (8-bit ROM) accuracy behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "dct/cordic.hpp"
#include "dct/dct2d.hpp"
#include "dct/impl.hpp"
#include "dct/scc_tables.hpp"

namespace dsra::dct {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Reference, MatrixIsOrthonormal) {
  const Mat8& m = dct8_matrix();
  for (int r = 0; r < 8; ++r) {
    for (int c = 0; c < 8; ++c) {
      double dot = 0.0;
      for (int k = 0; k < 8; ++k) dot += m[r][k] * m[c][k];
      EXPECT_NEAR(dot, r == c ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Reference, ParsevalEnergyPreservation) {
  Rng rng(1);
  for (int trial = 0; trial < 100; ++trial) {
    Vec8 x{};
    for (auto& v : x) v = rng.next_double() * 200.0 - 100.0;
    const Vec8 y = dct8(x);
    double ex = 0.0, ey = 0.0;
    for (int i = 0; i < 8; ++i) {
      ex += x[static_cast<std::size_t>(i)] * x[static_cast<std::size_t>(i)];
      ey += y[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
    }
    EXPECT_NEAR(ex, ey, 1e-6);
  }
}

TEST(Reference, ForwardInverseRoundTrip) {
  Rng rng(2);
  Vec8 x{};
  for (auto& v : x) v = rng.next_double() * 100.0;
  const Vec8 back = idct8(dct8(x));
  for (int i = 0; i < 8; ++i)
    EXPECT_NEAR(back[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i)], 1e-9);
}

TEST(Reference, GenericLengthMatchesEightPointPath) {
  Rng rng(3);
  std::vector<double> x(8);
  for (auto& v : x) v = rng.next_double() * 50.0;
  const auto y = dct_1d(x);
  Vec8 x8{};
  std::copy(x.begin(), x.end(), x8.begin());
  const Vec8 y8 = dct8(x8);
  for (int i = 0; i < 8; ++i)
    EXPECT_NEAR(y[static_cast<std::size_t>(i)], y8[static_cast<std::size_t>(i)], 1e-9);
  // Round trip at another length.
  std::vector<double> x16(16);
  for (auto& v : x16) v = rng.next_double();
  const auto back = idct_1d(dct_1d(x16));
  for (std::size_t i = 0; i < 16; ++i) EXPECT_NEAR(back[i], x16[i], 1e-9);
}

TEST(Reference, TwoDSeparabilityAgainstDirectDefinition) {
  Rng rng(4);
  Block8x8 x{};
  for (auto& row : x)
    for (auto& v : row) v = rng.next_double() * 100.0 - 50.0;
  const Block8x8 y = dct8x8(x);
  // Direct 2-D definition.
  for (int u = 0; u < 8; ++u) {
    for (int v = 0; v < 8; ++v) {
      const double cu = u == 0 ? std::sqrt(1.0 / 8) : 0.5;
      const double cv = v == 0 ? std::sqrt(1.0 / 8) : 0.5;
      double acc = 0.0;
      for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
          acc += x[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)] *
                 std::cos((2 * r + 1) * u * kPi / 16.0) * std::cos((2 * c + 1) * v * kPi / 16.0);
      EXPECT_NEAR(y[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)], cu * cv * acc, 1e-9);
    }
  }
  const Block8x8 back = idct8x8(y);
  for (int r = 0; r < 8; ++r)
    for (int c = 0; c < 8; ++c)
      EXPECT_NEAR(back[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)],
                  x[static_cast<std::size_t>(r)][static_cast<std::size_t>(c)], 1e-9);
}

TEST(SccTables, PowersOfThreeGenerateTheOddResidues) {
  // 3 has order 4 mod 16 and order 8 mod 32; +/-3^a covers all odd residues.
  const Scc4Tables& t4 = scc4_tables();
  std::set<int> a4(t4.a_of_input.begin(), t4.a_of_input.end());
  EXPECT_EQ(a4.size(), 4u);  // bijection
  for (int a = 0; a < 4; ++a)
    EXPECT_EQ(t4.a_of_input[static_cast<std::size_t>(t4.input_of_a[static_cast<std::size_t>(a)])], a);

  const Scc8Tables& t8 = scc8_tables();
  std::set<int> a8(t8.a_of_input.begin(), t8.a_of_input.end());
  EXPECT_EQ(a8.size(), 8u);
}

TEST(SccTables, NegacyclicIdentityReproducesTheOddCosines) {
  const Scc4Tables& t = scc4_tables();
  for (int j = 0; j < 4; ++j) {
    const int u = t.odd_u_of_row[static_cast<std::size_t>(j)];
    for (int a = 0; a < 4; ++a) {
      const int i = t.input_of_a[static_cast<std::size_t>(a)];
      const double truth = std::cos((2 * i + 1) * u * kPi / 16.0);
      const double via_tables = t.sign_out[static_cast<std::size_t>(j)] *
                                t.sign_in[static_cast<std::size_t>(a)] * t.negacyclic(j, a);
      EXPECT_NEAR(truth, via_tables, 1e-12);
    }
  }
}

TEST(SccTables, KernelHasTheSkewWrapProperty) {
  const Scc4Tables& t = scc4_tables();
  // cos(3^(b+4) pi/16) == -cos(3^b pi/16): 3^(b+4) = 3^b + 16 (mod 32).
  for (int b = 0; b < 4; ++b) {
    int p = 1;
    for (int k = 0; k < b; ++k) p = (p * 3) % 32;
    int p4 = p;
    for (int k = 0; k < 4; ++k) p4 = (p4 * 3) % 32;
    EXPECT_EQ((p + 16) % 32, p4);
    EXPECT_NEAR(std::cos(p4 * kPi / 16.0), -t.kernel[static_cast<std::size_t>(b)], 1e-12);
  }
}

TEST(SccTables, FullFormIsPureCirculantOverPermutedInputs) {
  const Scc8Tables& t = scc8_tables();
  for (int k = 0; k < 4; ++k) {
    const int u = 2 * k + 1;
    for (int i = 0; i < 8; ++i)
      EXPECT_NEAR(std::cos((2 * i + 1) * u * kPi / 16.0),
                  t.circulant(t.a_of_odd_u[static_cast<std::size_t>(k)],
                              t.a_of_input[static_cast<std::size_t>(i)]),
                  1e-12);
  }
}

TEST(SccImpl, OddRomsShareOneKernelUpToRotationAndSign) {
  // The structural point of Fig 8/9: ROM contents are rotations of a single
  // kernel. Verify on the generated netlist ROM configs of scc_full: the
  // four odd-row ROMs must be permutations of each other's contents.
  const Netlist nl = make_scc_full()->build_netlist();
  std::vector<std::vector<std::int64_t>> odd_roms;
  for (const auto& node : nl.nodes()) {
    if (const auto* mem = std::get_if<MemCfg>(&node.config)) {
      // row1, row3, row5, row7 are the odd outputs.
      if (node.name == "row1_rom" || node.name == "row3_rom" || node.name == "row5_rom" ||
          node.name == "row7_rom")
        odd_roms.push_back(mem->contents);
    }
  }
  ASSERT_EQ(odd_roms.size(), 4u);
  // Single-bit addresses (powers of two) hold the raw kernel coefficients;
  // collect them as multisets - identical across the four ROMs.
  auto kernel_multiset = [](const std::vector<std::int64_t>& rom) {
    std::multiset<std::int64_t> s;
    for (int b = 0; b < 8; ++b) s.insert(rom[static_cast<std::size_t>(1 << b)]);
    return s;
  };
  const auto base = kernel_multiset(odd_roms[0]);
  for (const auto& rom : odd_roms) EXPECT_EQ(kernel_multiset(rom), base);
}

TEST(Cordic, IterativeRotationConvergesToExactRotation) {
  Rng rng(5);
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.next_double() * 2.0 - 1.0;
    const double y = rng.next_double() * 2.0 - 1.0;
    const double angle = (rng.next_double() - 0.5) * 1.5;
    const auto [rx, ry] = cordic_rotate(x, y, angle, 24);
    EXPECT_NEAR(rx, x * std::cos(angle) - y * std::sin(angle), 1e-5);
    EXPECT_NEAR(ry, x * std::sin(angle) + y * std::cos(angle), 1e-5);
  }
}

TEST(Cordic, GainMatchesClosedForm) {
  EXPECT_NEAR(cordic_gain(16), 1.6467602581210656, 1e-9);
}

TEST(Cordic, FixedPointVersionTracksFloatWithinQuantisation) {
  const auto [fx, fy] = cordic_rotate_fixed(1000, -700, kPi / 8, 14, 14);
  const double k = cordic_gain(14);
  EXPECT_NEAR(static_cast<double>(fx) / k,
              1000 * std::cos(kPi / 8) + 700 * std::sin(kPi / 8), 3.0);
  EXPECT_NEAR(static_cast<double>(fy) / k,
              1000 * std::sin(kPi / 8) - 700 * std::cos(kPi / 8), 3.0);
}

TEST(Cordic, RotatorRomContentsAreRotationCoefficients) {
  // The DA-CORDIC rotator ROM of cordic1's X2/X6 pair holds
  // {0, sin, cos, cos+sin} * 1/2 in Q(frac), i.e. the same rotation the
  // iterative CORDIC converges to.
  const DaPrecision p = DaPrecision::wide();
  const Netlist nl = make_cordic1(p)->build_netlist();
  const auto node = nl.find_node("rot_x2_rom");
  ASSERT_TRUE(node.has_value());
  const auto& mem = std::get<MemCfg>(nl.node(*node).config);
  ASSERT_EQ(mem.words, 4);
  const double scale = std::pow(2.0, p.coeff_frac_bits);
  EXPECT_EQ(mem.contents[0], 0);
  EXPECT_NEAR(mem.contents[1] / scale, 0.5 * std::cos(kPi / 8), 1e-3);
  EXPECT_NEAR(mem.contents[2] / scale, 0.5 * std::sin(kPi / 8), 1e-3);
  EXPECT_NEAR(mem.contents[3] / scale, 0.5 * (std::cos(kPi / 8) + std::sin(kPi / 8)), 1e-3);
}

TEST(Dct2d, ArrayImplementationTracksReference) {
  Rng rng(6);
  auto impl = make_mixed_rom();
  for (int trial = 0; trial < 20; ++trial) {
    PixelBlock block{};
    for (auto& row : block)
      for (auto& v : row) v = static_cast<int>(rng.next_range(-128, 127));
    const Block8x8 want = forward_2d_reference(block);
    const Block8x8 got = forward_2d(*impl, block);
    for (int u = 0; u < 8; ++u)
      for (int v = 0; v < 8; ++v)
        EXPECT_NEAR(got[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)],
                    want[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)], 1.5);
  }
}

TEST(Dct2d, CycleCountPerBlock) {
  auto impl = make_da_basic();
  EXPECT_EQ(cycles_for_block(*impl), 16 * impl->cycles_per_transform() + 8);
}

class PrecisionSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrecisionSweep, ErrorShrinksWithCoefficientFractionBits) {
  // RMS error of the DA datapath is bounded by the coefficient
  // quantisation: ~ 2^-f * sum|x|. Verify the measured error tracks the
  // bound and halves (at least) per added fraction bit pair.
  const int f = GetParam();
  DaPrecision p = DaPrecision::wide();
  p.coeff_frac_bits = f;
  p.rom_width = f + 6;
  auto impl = make_da_basic(p);
  Rng rng(42);
  double err = 0.0;
  int count = 0;
  for (int trial = 0; trial < 100; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    Vec8 xd{};
    for (int i = 0; i < 8; ++i) xd[static_cast<std::size_t>(i)] = static_cast<double>(x[static_cast<std::size_t>(i)]);
    const Vec8 truth = dct8(xd);
    const Vec8 got = impl->transform_real(x);
    for (int u = 0; u < 8; ++u) {
      err += std::abs(got[static_cast<std::size_t>(u)] - truth[static_cast<std::size_t>(u)]);
      ++count;
    }
  }
  const double mean_err = err / count;
  // Theoretical bound: 8 coefficients, inputs |x| <= 2048, error per
  // coefficient 2^-(f+1).
  const double bound = 8.0 * 2048.0 * std::ldexp(1.0, -(f + 1));
  EXPECT_LT(mean_err, bound);
  // And the error actually uses the precision: not absurdly below the
  // single-sample quantisation floor.
  EXPECT_GT(mean_err, 0.0);
}

INSTANTIATE_TEST_SUITE_P(FracBits, PrecisionSweep, ::testing::Values(6, 8, 10, 12, 14));

TEST(PaperPrecision, EightBitRomsDegradeGracefully) {
  // Fig 4 labels the ROMs "256 words / 8-bits": with saturating 8-bit
  // entries only 5 fraction bits survive, so the transform is approximate.
  // Quantify the degradation and check the wide mode is strictly better.
  Rng rng(7);
  auto paper = make_da_basic(DaPrecision::paper());
  auto wide = make_da_basic(DaPrecision::wide());
  double paper_err = 0.0, wide_err = 0.0;
  for (int trial = 0; trial < 100; ++trial) {
    IVec8 x{};
    for (auto& v : x) v = rng.next_range(-2048, 2047);
    Vec8 xd{};
    for (int i = 0; i < 8; ++i) xd[static_cast<std::size_t>(i)] = static_cast<double>(x[static_cast<std::size_t>(i)]);
    const Vec8 truth = dct8(xd);
    const Vec8 yp = paper->transform_real(x);
    const Vec8 yw = wide->transform_real(x);
    for (int u = 0; u < 8; ++u) {
      paper_err += std::abs(yp[static_cast<std::size_t>(u)] - truth[static_cast<std::size_t>(u)]);
      wide_err += std::abs(yw[static_cast<std::size_t>(u)] - truth[static_cast<std::size_t>(u)]);
    }
  }
  EXPECT_LT(wide_err, paper_err / 50.0) << "wide mode must be far more accurate";
  // Paper mode stays usable: mean error below ~2 quantiser steps of 8-bit video.
  EXPECT_LT(paper_err / (100 * 8), 80.0);
}

}  // namespace
}  // namespace dsra::dct
