// Integration: every DCT implementation's netlist, executed cycle-accurately
// by the array simulator, must reproduce its functional model bit for bit;
// and after place-and-route + bitstream generation + read-back, the
// extracted design must still do so.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "cost/area.hpp"
#include "dct/impl.hpp"
#include "mapper/flow.hpp"

namespace dsra::dct {
namespace {

IVec8 random_block(Rng& rng, int bits) {
  IVec8 x{};
  const std::int64_t hi = (1ll << (bits - 1)) - 1;
  for (auto& v : x) v = rng.next_range(-hi - 1, hi);
  return x;
}

class DctArrayTest : public ::testing::TestWithParam<int> {
 protected:
  std::unique_ptr<DctImplementation> make() const {
    auto impls = all_implementations(DaPrecision::wide());
    return std::move(impls[static_cast<std::size_t>(GetParam())]);
  }
};

TEST_P(DctArrayTest, SimulatorMatchesFunctionalModelBitExactly) {
  auto impl = make();
  const Netlist nl = impl->build_netlist();
  Simulator sim(nl);
  impl->drive_constants(sim);
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  for (int trial = 0; trial < 25; ++trial) {
    const IVec8 x = random_block(rng, impl->precision().input_bits);
    const IVec8 want = impl->transform(x);
    const IVec8 got = run_da_transform(sim, x, impl->serial_width());
    for (int u = 0; u < kN; ++u)
      ASSERT_EQ(got[static_cast<std::size_t>(u)], want[static_cast<std::size_t>(u)])
          << impl->name() << " X" << u << " trial " << trial;
  }
}

TEST_P(DctArrayTest, BackToBackTransformsNeedNoFlush) {
  // The load cycle clears the accumulators, so consecutive transforms on
  // the same configured array must be independent.
  auto impl = make();
  const Netlist nl = impl->build_netlist();
  Simulator sim(nl);
  impl->drive_constants(sim);
  Rng rng(77);
  IVec8 first{};
  first.fill((1ll << (impl->precision().input_bits - 1)) - 1);  // saturate state
  (void)run_da_transform(sim, first, impl->serial_width());
  const IVec8 x = random_block(rng, impl->precision().input_bits);
  const IVec8 got = run_da_transform(sim, x, impl->serial_width());
  const IVec8 want = impl->transform(x);
  for (int u = 0; u < kN; ++u)
    ASSERT_EQ(got[static_cast<std::size_t>(u)], want[static_cast<std::size_t>(u)]) << u;
}

TEST_P(DctArrayTest, CompilesOntoDaArrayAndExtractedDesignStillMatches) {
  auto impl = make();
  const Netlist nl = impl->build_netlist();

  // Size the fabric from the census (CORDIC1 needs 12 Mem sites).
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8, 4);
  ASSERT_GE(arch.count_of(ClusterKind::kMem), nl.census().mem_clusters) << impl->name();

  map::FlowParams params;
  params.place.seed = 5;
  const map::CompiledDesign design = map::compile(nl, arch, params);
  EXPECT_TRUE(design.routes.success);
  EXPECT_GT(design.timing.fmax_mhz, 0.0);
  EXPECT_GT(design.bitstream_size_bits(), 0);

  const map::ExtractedDesign extracted = map::extract_design(arch, design.bitstream);
  EXPECT_EQ(extracted.netlist.validate(), "");

  Simulator sim(extracted.netlist);
  impl->drive_constants(sim);
  Rng rng(31);
  for (int trial = 0; trial < 10; ++trial) {
    const IVec8 x = random_block(rng, impl->precision().input_bits);
    const IVec8 want = impl->transform(x);
    const IVec8 got = run_da_transform(sim, x, impl->serial_width());
    for (int u = 0; u < kN; ++u)
      ASSERT_EQ(got[static_cast<std::size_t>(u)], want[static_cast<std::size_t>(u)])
          << impl->name() << " X" << u;
  }
}

TEST_P(DctArrayTest, ActivityIsNonZeroAfterWorkload) {
  auto impl = make();
  const Netlist nl = impl->build_netlist();
  Simulator sim(nl);
  impl->drive_constants(sim);
  Rng rng(5);
  for (int t = 0; t < 4; ++t)
    (void)run_da_transform(sim, random_block(rng, impl->precision().input_bits),
                           impl->serial_width());
  EXPECT_GT(sim.total_toggles(), 0u);
  EXPECT_EQ(sim.cycle(), 4u * static_cast<unsigned>(impl->cycles_per_transform()));
}

std::string impl_name_of(const ::testing::TestParamInfo<int>& info) {
  static const char* names[] = {"da_basic", "mixed_rom",    "cordic1",
                                "cordic2",  "scc_even_odd", "scc_full"};
  return names[info.param];
}

INSTANTIATE_TEST_SUITE_P(AllSix, DctArrayTest, ::testing::Range(0, 6), impl_name_of);

}  // namespace
}  // namespace dsra::dct
