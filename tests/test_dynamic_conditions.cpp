// Dynamic per-stream conditions: trajectory models, hysteresis
// implementation selection, mid-flight re-bucketing in the scheduler
// (bit-exactness across policies and dispatch modes), and the modeled
// reconfiguration charges on the sim timeline.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/sim_schedule.hpp"
#include "soc/trajectory.hpp"

namespace dsra::runtime {
namespace {

// The compiled library (six DCT place-and-route runs plus the ME context)
// is expensive; share one instance across the tests.
const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

StreamConfig dynamic_config(const std::string& name, soc::TrajectoryPtr trajectory,
                            soc::ConditionPolicy policy, int frames = 6, int size = 32) {
  StreamConfig cfg;
  cfg.name = name;
  cfg.width = size;
  cfg.height = size;
  cfg.frame_budget = frames;
  cfg.trajectory = std::move(trajectory);
  cfg.condition_policy = policy;
  cfg.hysteresis_band = 0.06;
  cfg.codec.me_range = 4;
  cfg.seed = 1234;
  return cfg;
}

/// A draining/fading mixed workload whose impls change mid-flight.
std::vector<StreamJob> dynamic_workload(soc::ConditionPolicy policy, int frames = 5) {
  const soc::TrajectoryPtr trajectories[] = {
      soc::linear_battery_drain(0.95, 0.15, 0.9),             // cordic1 -> ... -> scc_full
      soc::sinusoidal_channel_fade(0.9, 0.5, 0.2, 4.0),       // cordic1 <-> mixed_rom
      soc::stepped_channel_fade(0.9, {0.9, 0.3, 0.9}, 2),     // tunnel
      soc::jittered_trajectory(soc::constant_trajectory({0.6, 0.9}), 11, 0.05),
  };
  std::vector<StreamJob> jobs;
  int id = 0;
  for (const auto& t : trajectories) {
    StreamConfig cfg = dynamic_config("dyn" + std::to_string(id), t, policy, frames);
    cfg.seed = 400 + static_cast<std::uint64_t>(id) * 7;
    jobs.push_back(make_synthetic_job(id, cfg));
    ++id;
  }
  return jobs;
}

TEST(Trajectory, ModelsAreDeterministicAndShaped) {
  const auto drain = soc::linear_battery_drain(1.0, 0.1, 0.8);
  EXPECT_DOUBLE_EQ(drain->at(0).battery_level, 1.0);
  EXPECT_DOUBLE_EQ(drain->at(5).battery_level, 0.5);
  EXPECT_DOUBLE_EQ(drain->at(100).battery_level, 0.0);  // floored, not negative
  EXPECT_DOUBLE_EQ(drain->at(3).channel_quality, 0.8);

  const auto fade = soc::sinusoidal_channel_fade(0.9, 0.5, 0.2, 8.0);
  EXPECT_NEAR(fade->at(0).channel_quality, 0.5, 1e-12);
  EXPECT_NEAR(fade->at(2).channel_quality, 0.7, 1e-12);   // quarter period: peak
  EXPECT_NEAR(fade->at(6).channel_quality, 0.3, 1e-12);   // three quarters: trough
  EXPECT_DOUBLE_EQ(fade->at(4).battery_level, 0.9);

  const auto steps = soc::stepped_channel_fade(0.8, {0.9, 0.4, 0.7}, 3);
  EXPECT_DOUBLE_EQ(steps->at(0).channel_quality, 0.9);
  EXPECT_DOUBLE_EQ(steps->at(3).channel_quality, 0.4);
  EXPECT_DOUBLE_EQ(steps->at(8).channel_quality, 0.7);
  EXPECT_DOUBLE_EQ(steps->at(50).channel_quality, 0.7);  // holds the last level

  const auto combo = soc::compose_trajectories(drain, fade);
  EXPECT_DOUBLE_EQ(combo->at(5).battery_level, 0.5);
  EXPECT_NEAR(combo->at(2).channel_quality, 0.7, 1e-12);

  // Jitter is seeded and random-access reproducible: the same frame asked
  // twice (or out of order) gives the same sample; a different seed
  // gives a different series.
  const auto jit_a = soc::jittered_trajectory(soc::constant_trajectory({0.5, 0.5}), 42, 0.1);
  const auto jit_b = soc::jittered_trajectory(soc::constant_trajectory({0.5, 0.5}), 43, 0.1);
  const double sample = jit_a->at(7).battery_level;
  (void)jit_a->at(3);
  EXPECT_DOUBLE_EQ(jit_a->at(7).battery_level, sample);
  EXPECT_NE(jit_a->at(7).battery_level, jit_b->at(7).battery_level);
  for (int f = 0; f < 32; ++f) {
    EXPECT_LE(std::abs(jit_a->at(f).battery_level - 0.5), 0.1) << f;
    EXPECT_LE(std::abs(jit_a->at(f).channel_quality - 0.5), 0.1) << f;
  }
}

TEST(Trajectory, HysteresisSelectionHoldsUntilTheBandClears) {
  // Leaving cordic1 for cordic2 requires undershooting 0.6 by the band;
  // returning requires overshooting it by the band.
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.58, 1.0}, "cordic1", 0.05),
            "cordic1");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.54, 1.0}, "cordic1", 0.05),
            "cordic2");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.62, 1.0}, "cordic2", 0.05),
            "cordic2");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.66, 1.0}, "cordic2", 0.05),
            "cordic1");
  // Same around the low-battery boundary...
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.27, 1.0}, "scc_full", 0.05),
            "scc_full");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.31, 1.0}, "scc_full", 0.05),
            "cordic2");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.27, 1.0}, "cordic2", 0.05),
            "cordic2");
  // ...and the noisy-channel boundary.
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.9, 0.52}, "mixed_rom", 0.05),
            "mixed_rom");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.9, 0.56}, "mixed_rom", 0.05),
            "cordic1");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.9, 0.48}, "cordic1", 0.05),
            "cordic1");

  // A boundary the current impl is not adjacent to stays nominal: coming
  // off scc_full with the battery recovering to a steady 0.58 must land
  // on cordic2 (what the nominal policy picks for battery < 0.6), not
  // skip past the biased 0.6 boundary and latch on cordic1.
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.58, 1.0}, "scc_full", 0.05),
            "cordic2");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.55, 0.9}, "mixed_rom", 0.05),
            "cordic2");

  // No current impl, or no band: the nominal policy.
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.58, 1.0}, "", 0.05), "cordic2");
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({0.58, 1.0}, "cordic1", 0.0),
            "cordic2");

  // Broken sensors clamp conservatively no matter what was active.
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({std::nan(""), 1.0}, "cordic1", 0.05),
            "scc_full");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(soc::select_dct_implementation_hysteresis({1.0, -inf}, "cordic1", 0.05),
            "mixed_rom");
}

TEST(Trajectory, ResolveImplSequencePoliciesDiffer) {
  // Battery drains straight through both boundaries.
  const auto drain = soc::linear_battery_drain(0.9, 0.1, 1.0);
  const auto frozen =
      soc::resolve_impl_sequence(*drain, 8, soc::ConditionPolicy::kFrozen, 0.05);
  ASSERT_EQ(frozen.size(), 8u);
  for (const std::string& impl : frozen) EXPECT_EQ(impl, "cordic1");

  const auto naive =
      soc::resolve_impl_sequence(*drain, 8, soc::ConditionPolicy::kPerFrame, 0.05);
  EXPECT_EQ(naive.front(), "cordic1");
  EXPECT_EQ(naive[4], "cordic2");   // battery 0.5
  EXPECT_EQ(naive.back(), "scc_full");  // battery 0.2

  // A sensor jittering on the 0.6 boundary: naive re-selection thrashes,
  // hysteresis with a band wider than the jitter never switches at all.
  const auto hover =
      soc::jittered_trajectory(soc::constant_trajectory({0.6, 0.9}), 21, 0.05);
  const auto hover_naive =
      soc::resolve_impl_sequence(*hover, 32, soc::ConditionPolicy::kPerFrame, 0.0);
  const auto hover_hyst =
      soc::resolve_impl_sequence(*hover, 32, soc::ConditionPolicy::kHysteresis, 0.06);
  int naive_switches = 0, hyst_switches = 0;
  for (std::size_t f = 1; f < 32; ++f) {
    naive_switches += hover_naive[f] != hover_naive[f - 1];
    hyst_switches += hover_hyst[f] != hover_hyst[f - 1];
  }
  EXPECT_GT(naive_switches, 5);
  EXPECT_EQ(hyst_switches, 0);

  EXPECT_TRUE(soc::resolve_impl_sequence(*drain, 0, soc::ConditionPolicy::kPerFrame, 0.0)
                  .empty());
}

TEST(DynamicConditions, JobResolvesPerFrameImplsAtCreation) {
  const StreamConfig cfg = dynamic_config(
      "drain", soc::linear_battery_drain(0.9, 0.1, 1.0), soc::ConditionPolicy::kPerFrame, 8);
  const StreamJob job = make_synthetic_job(0, cfg);
  ASSERT_EQ(job.frame_impls.size(), 8u);
  ASSERT_EQ(job.frame_conditions.size(), 8u);
  EXPECT_EQ(job.impl_name, "cordic1");
  EXPECT_EQ(job.impl_for(0), "cordic1");
  EXPECT_EQ(job.impl_for(7), "scc_full");
  EXPECT_EQ(job.impl_for(100), "scc_full");  // clamped to the last frame
  EXPECT_GE(job.condition_switches, 2);
  EXPECT_DOUBLE_EQ(job.frame_conditions[4].battery_level, 0.5);

  // A static stream keeps the legacy behavior: no per-frame series, one
  // affinity key for its whole life.
  StreamConfig static_cfg;
  static_cfg.condition = {1.0, 1.0};
  static_cfg.frame_budget = 4;
  static_cfg.width = static_cfg.height = 32;
  const StreamJob static_job = make_synthetic_job(1, static_cfg);
  EXPECT_TRUE(static_job.frame_impls.empty());
  EXPECT_EQ(static_job.impl_for(3), static_job.impl_name);
}

TEST(DynamicConditions, RebucketingNeverDropsDuplicatesOrReordersFrames) {
  // The acceptance bit-exactness bar: the same dynamic workload served
  // under different scheduling policies and dispatch modes must encode
  // every frame exactly once, in order, with identical output — the
  // mid-flight context changes may only affect *when* work runs.
  SchedulerConfig cfg;
  cfg.fabrics = 2;

  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  auto affinity_jobs = dynamic_workload(soc::ConditionPolicy::kHysteresis);
  const RunReport affinity = MultiStreamScheduler(library(), cfg).run(affinity_jobs);

  cfg.queue.policy = SchedulingPolicy::kRoundRobin;
  auto rr_jobs = dynamic_workload(soc::ConditionPolicy::kHysteresis);
  const RunReport rr = MultiStreamScheduler(library(), cfg).run(rr_jobs);

  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto pipe_jobs = dynamic_workload(soc::ConditionPolicy::kHysteresis);
  const RunReport pipe = MultiStreamScheduler(library(), cfg).run(pipe_jobs);

  EXPECT_EQ(affinity.total_frames, 20u);
  EXPECT_EQ(rr.total_frames, 20u);
  EXPECT_EQ(pipe.total_frames, 20u);
  EXPECT_GT(affinity.condition_switches, 0u);

  for (std::size_t s = 0; s < affinity_jobs.size(); ++s) {
    const StreamJob& a = affinity_jobs[s];
    ASSERT_EQ(a.records.size(), a.frames.size()) << a.config.name;
    for (std::size_t k = 0; k < a.records.size(); ++k) {
      EXPECT_EQ(a.records[k].frame_index, static_cast<int>(k))
          << a.config.name << ": lost, duplicated or reordered frame";
      // Every frame ran under exactly the context its trajectory resolved.
      EXPECT_EQ(a.records[k].impl, a.frame_impls[k]) << a.config.name << "/" << k;
    }
    for (const std::vector<StreamJob>* other : {&rr_jobs, &pipe_jobs}) {
      const StreamJob& b = (*other)[s];
      ASSERT_EQ(b.records.size(), a.records.size());
      for (std::size_t k = 0; k < a.records.size(); ++k) {
        EXPECT_EQ(b.records[k].frame_index, a.records[k].frame_index);
        EXPECT_EQ(b.records[k].impl, a.records[k].impl);
        EXPECT_DOUBLE_EQ(b.records[k].stats.bits, a.records[k].stats.bits);
        EXPECT_DOUBLE_EQ(b.records[k].stats.psnr_db, a.records[k].stats.psnr_db);
      }
      EXPECT_EQ(b.recon_state.data(), a.recon_state.data()) << a.config.name;
    }
  }
}

TEST(DynamicConditions, MidFlightSwitchChargesTheConfigurationPort) {
  // One stream, one fabric: the battery walks 0.8, 0.6, 0.4, 0.2 so the
  // fabric must switch context twice mid-stream — visible in the
  // per-frame records and charged into the modeled makespan.
  StreamConfig cfg = dynamic_config("drain", soc::linear_battery_drain(0.8, 0.2, 1.0),
                                    soc::ConditionPolicy::kPerFrame, 4);
  std::vector<StreamJob> jobs;
  jobs.push_back(make_synthetic_job(0, cfg));
  ASSERT_EQ(jobs[0].condition_switches, 2);  // cordic1 -> cordic2 -> scc_full

  SchedulerConfig scfg;
  scfg.fabrics = 1;
  const RunReport report = MultiStreamScheduler(library(), scfg).run(jobs);

  ASSERT_EQ(jobs[0].records.size(), 4u);
  EXPECT_EQ(jobs[0].records[0].impl, "cordic1");
  EXPECT_EQ(jobs[0].records[1].impl, "cordic1");
  EXPECT_EQ(jobs[0].records[2].impl, "cordic2");
  EXPECT_EQ(jobs[0].records[3].impl, "scc_full");
  EXPECT_GT(jobs[0].records[0].reconfig_cycles, 0u);  // initial load
  EXPECT_EQ(jobs[0].records[1].reconfig_cycles, 0u);  // same context: free
  EXPECT_GT(jobs[0].records[2].reconfig_cycles, 0u);  // mid-flight re-bucket
  EXPECT_GT(jobs[0].records[3].reconfig_cycles, 0u);
  EXPECT_EQ(report.condition_switches, 2u);
  EXPECT_EQ(report.total_switches, 3);

  // On a single fabric the sim schedule is strictly serial, so the
  // modeled makespan decomposes exactly into array cycles plus every
  // reconfiguration charge the run recorded: switching contexts
  // mid-stream costs modeled time, not just a counter.
  const SimSchedule sim = simulate_timeline(jobs, report.timeline);
  std::uint64_t array_cycles = 0, reconfig_cycles = 0;
  for (const FrameRecord& r : jobs[0].records)
    array_cycles += r.stats.me_array_cycles + 2 * r.stats.dct_array_cycles;
  for (const SimStageJob& j : sim.jobs) reconfig_cycles += j.reconfig_cycles;
  EXPECT_EQ(reconfig_cycles, report.total_reconfig_cycles + report.total_fetch_cycles);
  EXPECT_EQ(sim.makespan_cycles, array_cycles + reconfig_cycles);
}

TEST(DynamicConditions, HysteresisBeatsNaiveOnSwitchCount) {
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  auto naive_jobs = dynamic_workload(soc::ConditionPolicy::kPerFrame, 12);
  const RunReport naive = MultiStreamScheduler(library(), cfg).run(naive_jobs);
  auto hyst_jobs = dynamic_workload(soc::ConditionPolicy::kHysteresis, 12);
  const RunReport hyst = MultiStreamScheduler(library(), cfg).run(hyst_jobs);

  EXPECT_EQ(naive.total_frames, hyst.total_frames);
  EXPECT_LT(hyst.condition_switches, naive.condition_switches);
  // Frozen assignment goes stale as conditions drift.
  auto frozen_jobs = dynamic_workload(soc::ConditionPolicy::kFrozen, 12);
  const RunReport frozen = MultiStreamScheduler(library(), cfg).run(frozen_jobs);
  EXPECT_EQ(frozen.condition_switches, 0u);
  EXPECT_GT(frozen.stale_frames, 0u);
  EXPECT_EQ(naive.stale_frames, 0u);
}

TEST(DynamicConditions, SchedulerValidatesTheUnionOfTrajectoryContexts) {
  // A dynamic stream is validated against every context its trajectory
  // can select, not just the frame-0 choice: corrupt one mid-sequence
  // entry and the run must fail fast, before any work is dispatched.
  auto jobs = dynamic_workload(soc::ConditionPolicy::kPerFrame);
  ASSERT_GE(jobs[0].frame_impls.size(), 3u);
  jobs[0].frame_impls[2] = "not_an_impl";
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  MultiStreamScheduler scheduler(library(), cfg);
  try {
    (void)scheduler.run(jobs);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("not_an_impl"), std::string::npos) << message;
    EXPECT_NE(message.find("frame 2"), std::string::npos) << message;
  }
  EXPECT_TRUE(jobs[0].records.empty()) << "validation must fail before dispatch";
}

TEST(DynamicConditions, QueueResolvesHandBuiltTrajectoryJobs) {
  // A job built by hand (trajectory set, per-frame impls never resolved)
  // must still be re-bucketed per frame: the queue resolves it instead of
  // silently falling back to the frozen impl_name.
  auto jobs = dynamic_workload(soc::ConditionPolicy::kPerFrame);
  StreamJob& job = jobs[0];
  const std::vector<std::string> expected = job.frame_impls;
  job.frame_impls.clear();
  job.frame_conditions.clear();
  job.condition_switches = 0;
  job.impl_name = "da_basic";  // wrong on purpose: resolution must override

  SchedulerConfig cfg;
  cfg.fabrics = 1;
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);
  EXPECT_EQ(report.total_frames, 20u);
  ASSERT_EQ(job.frame_impls, expected);
  for (std::size_t k = 0; k < job.records.size(); ++k)
    EXPECT_EQ(job.records[k].impl, expected[k]) << k;
}

}  // namespace
}  // namespace dsra::runtime
