// Calendar-queue event core: total-order equivalence with a reference
// sort, FIFO stability at equal keys, resize behaviour across grow and
// shrink, and the floor rewind on an earlier-than-cursor push.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

#include "runtime/event_core.hpp"

namespace dsra::runtime {
namespace {

// Deterministic 64-bit LCG (Knuth MMIX constants); the tests must not
// depend on a global RNG seed.
struct Lcg {
  std::uint64_t state;
  std::uint64_t next() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  }
};

using Key = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t, std::uint64_t>;

Key key_of(const SimEvent& e) { return {e.time, e.tie, e.payload, e.seq}; }

/// Drain @p q and require the exact (time, tie, payload, seq) order of a
/// reference sort over @p pushed.
void expect_drains_sorted(CalendarQueue& q, std::vector<Key> pushed) {
  std::sort(pushed.begin(), pushed.end());
  for (const Key& want : pushed) {
    ASSERT_FALSE(q.empty());
    EXPECT_EQ(key_of(q.pop()), want);
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventCore, MatchesReferenceSortOnRandomEvents) {
  CalendarQueue q;
  Lcg rng{42};
  std::vector<Key> pushed;
  for (std::uint64_t seq = 0; seq < 5000; ++seq) {
    // Clustered times (many collisions) plus a sparse tail stress both
    // the dense-bucket and the empty-lap scan paths.
    const std::uint64_t time =
        seq % 7 == 0 ? rng.next() % 1000000 : rng.next() % 64;
    const std::uint64_t tie = rng.next() % 8;
    const std::uint64_t payload = rng.next() % 128;
    q.push(time, tie, payload);
    pushed.emplace_back(time, tie, payload, seq);
  }
  EXPECT_EQ(q.size(), pushed.size());
  expect_drains_sorted(q, std::move(pushed));
}

TEST(EventCore, EqualKeysPopInInsertionOrder) {
  CalendarQueue q;
  for (int k = 0; k < 100; ++k) q.push(7, 7, 7);
  std::uint64_t expect_seq = 0;
  while (!q.empty()) {
    const SimEvent e = q.pop();
    EXPECT_EQ(e.seq, expect_seq++);
  }
  EXPECT_EQ(expect_seq, 100u);
}

TEST(EventCore, TieAndPayloadBreakEqualTimes) {
  CalendarQueue q;
  // Same time throughout: order must be (tie, payload, seq).
  q.push(10, 5, 0);  // seq 0
  q.push(10, 1, 9);  // seq 1
  q.push(10, 1, 2);  // seq 2
  q.push(10, 0, 4);  // seq 3
  EXPECT_EQ(q.pop().seq, 3u);  // tie 0
  EXPECT_EQ(q.pop().seq, 2u);  // tie 1, payload 2
  EXPECT_EQ(q.pop().seq, 1u);  // tie 1, payload 9
  EXPECT_EQ(q.pop().seq, 0u);  // tie 5
}

TEST(EventCore, SurvivesGrowAndShrinkResizes) {
  CalendarQueue q;
  Lcg rng{7};
  std::vector<Key> pushed;
  // Grow to 20k (several doubling rebuilds), drain to near-empty (shrink
  // rebuilds), then verify ordering still holds for a fresh population.
  for (std::uint64_t seq = 0; seq < 20000; ++seq) {
    const std::uint64_t time = rng.next() % 100000;
    q.push(time, 0, seq);
    pushed.emplace_back(time, 0ULL, seq, seq);
  }
  std::sort(pushed.begin(), pushed.end());
  for (std::size_t k = 0; k + 3 < pushed.size(); ++k)
    EXPECT_EQ(key_of(q.pop()), pushed[k]);
  EXPECT_EQ(q.size(), 3u);
  while (!q.empty()) q.pop();

  std::vector<Key> second;
  for (std::uint64_t k = 0; k < 100; ++k) {
    const std::uint64_t time = rng.next() % 50;
    q.push(time, 0, k);
    second.emplace_back(time, 0ULL, k, 20000 + k);
  }
  expect_drains_sorted(q, std::move(second));
}

TEST(EventCore, PushEarlierThanFloorRewinds) {
  CalendarQueue q;
  q.push(1000, 0, 0);
  q.push(2000, 0, 1);
  EXPECT_EQ(q.pop().time, 1000u);  // floor advances to ~1000
  q.push(5, 0, 2);                 // earlier than the floor: must rewind
  EXPECT_EQ(q.pop().time, 5u);
  EXPECT_EQ(q.pop().time, 2000u);
  EXPECT_TRUE(q.empty());
}

TEST(EventCore, InterleavedHoldModel) {
  // The classic event-set workload: pop the earliest, push a successor a
  // random hold time later. Track a reference multiset via sorted vector.
  CalendarQueue q;
  Lcg rng{1234};
  std::vector<Key> live;
  std::uint64_t seq = 0;
  for (int k = 0; k < 64; ++k) {
    const std::uint64_t t = rng.next() % 100;
    q.push(t, 0, 0);
    live.emplace_back(t, 0ULL, 0ULL, seq++);
  }
  std::sort(live.begin(), live.end());
  for (int step = 0; step < 5000; ++step) {
    ASSERT_FALSE(q.empty());
    const SimEvent e = q.pop();
    ASSERT_EQ(key_of(e), live.front());
    live.erase(live.begin());
    const std::uint64_t t = e.time + 1 + rng.next() % 97;
    q.push(t, 0, 0);
    live.insert(std::lower_bound(live.begin(), live.end(), Key{t, 0, 0, seq}),
                Key{t, 0, 0, seq});
    ++seq;
  }
  expect_drains_sorted(q, std::move(live));
}

}  // namespace
}  // namespace dsra::runtime
