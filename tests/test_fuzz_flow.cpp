// Randomised end-to-end property test of the mapping flow: generate
// random cluster netlists, compile them onto a fabric, extract the design
// back from the bitstream, and require the extracted netlist to simulate
// identically to the original under a random stimulus - the same invariant
// the DCT/ME integration tests check, but over a much wider structural
// space (random topologies, widths, sequential elements, ROMs).
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/sim.hpp"
#include "mapper/flow.hpp"

namespace dsra::map {
namespace {

/// Random netlist mixing combinational and sequential clusters with
/// random (legal) widths, fan-out and a few ROMs.
Netlist random_netlist(Rng& rng, int node_count) {
  Netlist nl("fuzz");
  struct Produced {
    NetId net;
    int width;
  };
  std::vector<Produced> nets;
  const int in_w = 16;
  for (int i = 0; i < 3; ++i)
    nets.push_back({nl.add_input("in" + std::to_string(i), in_w), in_w});
  const NetId ctl = nl.add_input("ctl", 1);

  auto pick_any = [&]() -> Produced { return nets[rng.next_below(nets.size())]; };

  for (int i = 0; i < node_count; ++i) {
    const std::string name = "n" + std::to_string(i);
    // Choose the operands first; the node is at least as wide as both
    // (input ports may be wider than their nets, never narrower).
    const Produced in_a = pick_any();
    const Produced in_b = pick_any();
    int width = std::max({in_a.width, in_b.width, 8});
    if (rng.next_bool()) width = std::min(width + 4, 24);
    auto pick = [&](int) -> Produced { return rng.next_bool() ? in_a : in_b; };
    switch (rng.next_below(6)) {
      case 0: {  // comb or registered add/sub
        const bool registered = rng.next_bool();
        const NodeId n = nl.add_node(
            name, AddShiftCfg{width, rng.next_bool() ? AddShiftOp::kAdd : AddShiftOp::kSub, 0,
                              registered});
        nl.connect_input(n, "a", pick(width).net);
        nl.connect_input(n, "b", pick(width).net);
        nets.push_back({nl.output_net(n, "y"), width});
        break;
      }
      case 1: {  // absolute difference
        const NodeId n = nl.add_node(name, AbsDiffCfg{width, AbsDiffOp::kAbsDiff, rng.next_bool()});
        nl.connect_input(n, "a", pick(width).net);
        nl.connect_input(n, "b", pick(width).net);
        nets.push_back({nl.output_net(n, "y"), width});
        break;
      }
      case 2: {  // registered mux with control
        const NodeId n = nl.add_node(name, MuxRegCfg{width, true});
        nl.connect_input(n, "a", pick(width).net);
        nl.connect_input(n, "b", pick(width).net);
        nl.connect_input(n, "sel", ctl);
        nets.push_back({nl.output_net(n, "y"), width});
        break;
      }
      case 3: {  // accumulator
        const NodeId n = nl.add_node(name, AddAccCfg{width, AddAccOp::kAccumulate, false});
        nl.connect_input(n, "a", pick(width).net);
        nl.connect_input(n, "en", ctl);
        nets.push_back({nl.output_net(n, "y"), width});
        break;
      }
      case 4: {  // comparator
        const NodeId n = nl.add_node(name, CompCfg{width, rng.next_bool() ? CompOp::kMin2
                                                                          : CompOp::kMax2});
        nl.connect_input(n, "a", pick(width).net);
        nl.connect_input(n, "b", pick(width).net);
        nets.push_back({nl.output_net(n, "y"), width});
        break;
      }
      default: {  // small ROM addressed by low bits of a data net
        MemCfg mem;
        mem.words = 16;
        mem.width = width;
        mem.addr_mode = MemAddrMode::kWord;
        mem.contents.resize(16);
        for (auto& v : mem.contents)
          v = rng.next_range(-(1ll << (width - 1)), (1ll << (width - 1)) - 1);
        const NodeId n = nl.add_node(name, mem);
        // addr port is 4 bits; feed it from a 1-bit control (legal: input
        // ports may be wider than the net).
        nl.connect_input(n, "addr", ctl);
        nets.push_back({nl.output_net(n, "q"), width});
        break;
      }
    }
  }
  // Observe the last few values.
  for (int i = 0; i < 4; ++i) {
    const Produced& p = nets[nets.size() - 1 - static_cast<std::size_t>(i)];
    nl.add_output("out" + std::to_string(i), p.net);
  }
  return nl;
}

class FuzzFlow : public ::testing::TestWithParam<int> {};

TEST_P(FuzzFlow, CompileExtractSimulateEquivalence) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919);
  const Netlist nl = random_netlist(rng, 18);
  ASSERT_EQ(nl.validate(), "");

  // A fabric with sites for everything.
  ArrayArch arch("fuzz_fabric", 10, 10, ChannelSpec{6, 10});
  for (int i = 0; i < arch.tile_count(); ++i) {
    const ClusterKind kinds[] = {ClusterKind::kMuxReg,  ClusterKind::kAbsDiff,
                                 ClusterKind::kAddAcc,  ClusterKind::kComp,
                                 ClusterKind::kAddShift, ClusterKind::kMem};
    arch.set_kind(arch.coord_of(i), kinds[i % 6]);
  }

  FlowParams params;
  params.place.seed = static_cast<std::uint64_t>(GetParam());
  const CompiledDesign design = compile(nl, arch, params);
  ASSERT_TRUE(design.routes.success);
  const ExtractedDesign extracted = extract_design(arch, design.bitstream);
  ASSERT_EQ(extracted.netlist.validate(), "");

  Simulator a(nl), b(extracted.netlist);
  for (int cycle = 0; cycle < 40; ++cycle) {
    for (int i = 0; i < 3; ++i) {
      const std::int64_t v = rng.next_range(-30000, 30000);
      a.set_input("in" + std::to_string(i), v);
      b.set_input("in" + std::to_string(i), v);
    }
    const std::int64_t c = rng.next_range(0, 1);
    a.set_input("ctl", c);
    b.set_input("ctl", c);
    a.step();
    b.step();
    for (int o = 0; o < 4; ++o)
      ASSERT_EQ(a.output("out" + std::to_string(o)), b.output("out" + std::to_string(o)))
          << "cycle " << cycle << " out" << o;
  }
  // Timing analysis must succeed on both descriptions and agree.
  const TimingReport ta = analyze_timing(nl, design.placement, &design.routes);
  const TimingReport tb = analyze_timing(extracted.netlist, extracted.placement, &design.routes);
  EXPECT_NEAR(ta.critical_path_ns, tb.critical_path_ns, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzFlow, ::testing::Range(1, 13));

}  // namespace
}  // namespace dsra::map
