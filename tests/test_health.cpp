// Live health subsystem: flight-recorder ring semantics (wrap keeps the
// newest records, snapshots are tear-free), watchdog trips on injected
// anomalies (stall, queue growth, starvation, SLA burn — each
// demonstrably fires, and the burn detector fires *before* the deadline
// passes), zero-cost-off bit-exactness, a clean monitored run tripping
// nothing, and the metrics timeline epoch cap accounting its drops.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "runtime/health/flight_recorder.hpp"
#include "runtime/health/monitor.hpp"
#include "runtime/health/snapshot.hpp"
#include "runtime/health/watchdog.hpp"
#include "runtime/scheduler.hpp"
#include "runtime/sharded_queue.hpp"
#include "runtime/telemetry/export.hpp"
#include "runtime/telemetry/metrics.hpp"

namespace dsra::runtime {
namespace {

const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

std::vector<StreamJob> mixed_workload(int streams, int frames, int size) {
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // -> cordic1
      {0.5, 0.9},  // -> cordic2
      {0.9, 0.3},  // -> mixed_rom
      {0.1, 0.9},  // -> scc_full
  };
  std::vector<StreamJob> jobs;
  jobs.reserve(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = size;
    cfg.height = size;
    cfg.frame_budget = frames;
    cfg.condition = conditions[k % 4];
    cfg.codec.me_range = 4;
    cfg.seed = 9300 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

void expect_bit_exact(const StreamJob& a, const StreamJob& b) {
  ASSERT_EQ(a.records.size(), b.records.size()) << a.config.name;
  for (std::size_t k = 0; k < a.records.size(); ++k) {
    const video::FrameStats& sa = a.records[k].stats;
    const video::FrameStats& sb = b.records[k].stats;
    EXPECT_EQ(a.records[k].impl, b.records[k].impl) << a.config.name << "/" << k;
    EXPECT_DOUBLE_EQ(sa.bits, sb.bits) << a.config.name << "/" << k;
    EXPECT_DOUBLE_EQ(sa.psnr_db, sb.psnr_db) << a.config.name << "/" << k;
    EXPECT_EQ(sa.blocks_coded, sb.blocks_coded) << a.config.name << "/" << k;
    EXPECT_EQ(sa.dct_array_cycles, sb.dct_array_cycles) << a.config.name << "/" << k;
    EXPECT_EQ(sa.me_array_cycles, sb.me_array_cycles) << a.config.name << "/" << k;
  }
  EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << a.config.name;
}

// ---- flight recorder --------------------------------------------------

TEST(FlightRecorder, WrapKeepsNewestRecords) {
  health::FlightRecorderConfig cfg;
  cfg.capacity_per_ring = 64;  // already a power of two
  health::FlightRecorder rec(cfg);
  rec.begin_run(/*fabrics=*/1);
  const int total = 200;
  for (int i = 0; i < total; ++i)
    rec.record(0, health::EventKind::kDispatch, /*stream=*/i, /*frame=*/i % 7,
               /*value=*/static_cast<std::uint64_t>(i));

  EXPECT_EQ(rec.recorded(), static_cast<std::uint64_t>(total));
  EXPECT_EQ(rec.dropped(), static_cast<std::uint64_t>(total - 64));

  const std::vector<health::FlightEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 64u);
  // Overwrite-oldest: exactly the last 64 records survive, in sequence
  // order, payloads intact.
  for (std::size_t k = 0; k < events.size(); ++k) {
    const int i = total - 64 + static_cast<int>(k);
    EXPECT_EQ(events[k].seq, static_cast<std::uint64_t>(i + 1));
    EXPECT_EQ(events[k].stream_id, i);
    EXPECT_EQ(events[k].frame_index, i % 7);
    EXPECT_EQ(events[k].value, static_cast<std::uint64_t>(i));
    EXPECT_EQ(events[k].kind, health::EventKind::kDispatch);
  }
}

TEST(FlightRecorder, MergesRingsInGlobalOrderAndSurvivesConcurrentReads) {
  health::FlightRecorder rec({256});
  rec.begin_run(/*fabrics=*/2);  // rings 0, 1 + control ring 2
  EXPECT_EQ(rec.control_ring(), 2);

  // Two writer threads (one per ring) race a snapshotting reader; every
  // event a snapshot returns must be untorn (stream == value here) and
  // in strictly increasing global sequence order.
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto events = rec.snapshot();
      std::uint64_t prev_seq = 0;
      for (const health::FlightEvent& ev : events) {
        EXPECT_GT(ev.seq, prev_seq);
        prev_seq = ev.seq;
        EXPECT_EQ(static_cast<std::uint64_t>(ev.stream_id), ev.value);
      }
    }
  });
  std::vector<std::thread> writers;
  for (int ring = 0; ring < 2; ++ring)
    writers.emplace_back([&rec, ring] {
      for (int i = 0; i < 4000; ++i)
        rec.record(ring, health::EventKind::kSteal, /*stream=*/i, /*frame=*/0,
                   /*value=*/static_cast<std::uint64_t>(i));
    });
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_relaxed);
  reader.join();

  EXPECT_EQ(rec.recorded(), 8000u);
  const std::string json = rec.json();
  EXPECT_NE(json.find("\"capacity_per_ring\": 256"), std::string::npos);
  EXPECT_NE(json.find("\"kind\": \"steal\""), std::string::npos);
}

TEST(FlightRecorder, OutOfRangeRingIsDroppedNotFatal) {
  health::FlightRecorder rec({64});
  rec.begin_run(1);
  rec.record(7, health::EventKind::kDispatch, 0, 0, 0);   // no such ring
  rec.record(-1, health::EventKind::kDispatch, 0, 0, 0);  // negative
  EXPECT_TRUE(rec.snapshot().empty());
}

// ---- watchdogs over synthetic snapshots -------------------------------

health::HealthSnapshot snap_with(std::uint64_t epoch, std::uint64_t depth,
                                 std::uint64_t completions,
                                 std::uint64_t oldest_age = 0) {
  health::HealthSnapshot s;
  s.epoch = epoch;
  s.queue.depth = depth;
  s.queue.completions = completions;
  s.queue.oldest_age = oldest_age;
  return s;
}

TEST(Watchdogs, StallTripsAfterConfiguredEpochsAndLatches) {
  health::WatchdogConfig cfg;
  cfg.stall_epochs = 3;
  health::Watchdogs dogs(cfg);
  std::uint64_t epoch = 0;
  // Baseline epoch, then three no-progress epochs with queued work.
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, 10)).empty());
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, 10)).empty());
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, 10)).empty());
  const auto trips = dogs.evaluate(snap_with(++epoch, 5, 10));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kStall);
  // Latched: the persisting stall does not re-trip.
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, 10)).empty());
  // Progress resets nothing visible — already latched for the run.
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, 11)).empty());
}

TEST(Watchdogs, CompletionsProgressPreventsStall) {
  health::WatchdogConfig cfg;
  cfg.stall_epochs = 2;
  health::Watchdogs dogs(cfg);
  std::uint64_t epoch = 0, done = 0;
  for (int i = 0; i < 10; ++i)
    EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 5, ++done)).empty());
}

TEST(Watchdogs, InflightWorkSuppressesStall) {
  // One long job spanning many epochs with zero completions is SLOW,
  // not stalled (think a sanitizer-instrumented or heavily loaded
  // host): as long as something is in flight the stall verdict must
  // stay suppressed, and the run counter must restart when work picks
  // back up.
  health::WatchdogConfig cfg;
  cfg.stall_epochs = 3;
  health::Watchdogs dogs(cfg);
  std::uint64_t epoch = 0;
  auto inflight_snap = [&](std::uint64_t inflight) {
    health::HealthSnapshot s = snap_with(++epoch, 5, 10);
    s.inflight_jobs = inflight;
    return s;
  };
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(dogs.evaluate(inflight_snap(1)).empty());
  // The worker wedges for real: in-flight drains to zero, no progress.
  EXPECT_TRUE(dogs.evaluate(inflight_snap(0)).empty());
  EXPECT_TRUE(dogs.evaluate(inflight_snap(0)).empty());
  const auto trips = dogs.evaluate(inflight_snap(0));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kStall);
}

TEST(Watchdogs, QueueGrowthTripsOnMonotoneGrowthAboveFloor) {
  health::WatchdogConfig cfg;
  cfg.growth_epochs = 4;
  cfg.growth_min_depth = 16;
  health::Watchdogs dogs(cfg);
  std::uint64_t epoch = 0, done = 0;
  // Growing but below the floor: transient ramp, no trip.
  for (std::uint64_t d = 1; d <= 5; ++d)
    EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, d, ++done)).empty());
  // Keep growing past the floor: 6..17 — the 4-epoch monotone run is
  // long satisfied, the floor arms the trip at depth >= 16.
  std::vector<health::WatchdogTrip> trips;
  for (std::uint64_t d = 6; d <= 17 && trips.empty(); ++d)
    trips = dogs.evaluate(snap_with(++epoch, d, ++done));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kQueueGrowth);
}

TEST(Watchdogs, FlatDepthNeverTripsGrowth) {
  health::Watchdogs dogs;
  std::uint64_t epoch = 0, done = 0;
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 20, ++done)).empty());
}

TEST(Watchdogs, StarvationTripsPastAgeBound) {
  health::WatchdogConfig cfg;
  cfg.starvation_age_bound = 128;
  health::Watchdogs dogs(cfg);
  std::uint64_t epoch = 0, done = 0;
  EXPECT_TRUE(dogs.evaluate(snap_with(++epoch, 4, ++done, 128)).empty());
  const auto trips = dogs.evaluate(snap_with(++epoch, 4, ++done, 129));
  ASSERT_EQ(trips.size(), 1u);
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kStarvation);
}

// ---- injected anomalies through the monitor ---------------------------

TEST(HealthMonitor, StalledQueueTripsStallWatchdog) {
  // A real sharded queue full of seeded jobs and NO workers: depth stays
  // positive, completions stay zero — the livelock/wedged-worker shape.
  auto jobs = mixed_workload(4, 3, 16);
  JobQueueConfig qcfg;
  qcfg.shards = 2;
  ShardedJobQueue queue(jobs, qcfg);

  health::HealthMonitorConfig cfg;
  cfg.watchdogs.stall_epochs = 3;
  health::HealthMonitor monitor(cfg);  // manual ticks: deterministic
  monitor.begin_run(/*fabrics=*/2, {});
  monitor.attach_queue([&queue] { return queue.health_sample(); });

  for (int i = 0; i < 4; ++i) {
    const health::HealthSnapshot snap = monitor.tick();
    EXPECT_GT(snap.queue.depth, 0u);
    EXPECT_EQ(snap.queue.completions, 0u);
  }
  monitor.finish_run();

  const auto trips = monitor.trips();
  ASSERT_FALSE(trips.empty());
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kStall);
  EXPECT_EQ(monitor.anomalies_total(), trips.size());
  // The trip landed in the flight recorder's control ring too.
  bool saw_trip_event = false;
  for (const health::FlightEvent& ev : monitor.flight().snapshot())
    if (ev.kind == health::EventKind::kWatchdogTrip) saw_trip_event = true;
  EXPECT_TRUE(saw_trip_event);
}

TEST(HealthMonitor, OverloadWaveTripsBurnRateBeforeDeadline) {
  // Stream 0 holds a deadline exactly equal to its own analytic cost —
  // feasible alone, hopeless once an overload wave (stream 1's traffic)
  // soaks the pool. Stream 0 finishes 1 frame while the wave burns 5
  // frames of modeled time: projected completion 5x the deadline.
  health::StreamBudget constrained;
  constrained.stream_id = 0;
  constrained.deadline_cycles = 1000.0;
  constrained.frame_cycles.assign(10, 100.0);  // total 1000
  health::StreamBudget wave;
  wave.stream_id = 1;
  wave.deadline_cycles = 0.0;  // best-effort background load
  wave.frame_cycles.assign(10, 100.0);

  health::HealthMonitorConfig cfg;
  cfg.watchdogs.burn_threshold = 1.25;
  cfg.watchdogs.burn_warmup = 0.10;
  health::HealthMonitor monitor(cfg);
  monitor.begin_run(/*fabrics=*/1, {constrained, wave});

  monitor.on_frame_done(0);
  for (int i = 0; i < 4; ++i) monitor.on_frame_done(1);
  const health::HealthSnapshot snap = monitor.tick();
  monitor.finish_run();

  ASSERT_EQ(snap.streams.size(), 2u);
  // Tripped BEFORE the deadline passed: the detector predicts the
  // violation while there is still budget left.
  EXPECT_LT(snap.modeled_now_cycles, 1000.0);
  EXPECT_GT(snap.streams[0].burn_rate, 1.25);
  const auto trips = monitor.trips();
  ASSERT_FALSE(trips.empty());
  EXPECT_EQ(trips[0].kind, health::WatchdogKind::kSlaBurn);
  EXPECT_EQ(trips[0].stream_id, 0);
  // Best-effort streams never carry a burn rate.
  EXPECT_EQ(snap.streams[1].burn_rate, 0.0);
}

TEST(HealthMonitor, BurnRatesAreAlwaysFiniteAndNonNegative) {
  health::StreamBudget b;
  b.stream_id = 0;
  b.deadline_cycles = 500.0;
  b.frame_cycles.assign(4, 50.0);
  health::HealthMonitor monitor;
  monitor.begin_run(1, {b});
  // Epoch with zero progress, partial progress, and completion.
  for (int i = 0; i < 5; ++i) {
    const health::HealthSnapshot snap = monitor.tick();
    for (const health::StreamHealth& s : snap.streams) {
      EXPECT_GE(s.burn_rate, 0.0);
      EXPECT_TRUE(s.burn_rate == s.burn_rate);  // not NaN
      EXPECT_LT(s.burn_rate, 1e12);             // finite
    }
    monitor.on_frame_done(0);
  }
  monitor.finish_run();
  EXPECT_EQ(monitor.anomalies_total(), 0u);  // on-budget throughout
}

// ---- scheduler integration --------------------------------------------

TEST(HealthScheduler, ZeroCostOffIsBitExact) {
  // Health on vs off, single fabric (deterministic dispatch order):
  // modeled cycles and encoded output must be identical — the monitor
  // only observes.
  auto plain_jobs = mixed_workload(4, 3, 16);
  auto monitored_jobs = mixed_workload(4, 3, 16);

  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  cfg.queue.shards = 2;
  const RunReport plain = MultiStreamScheduler(library(), cfg).run(plain_jobs);

  health::HealthMonitorConfig mon_cfg;
  mon_cfg.epoch_host_ms = 0.25;  // live sampler thread racing the run
  health::HealthMonitor monitor(mon_cfg);
  cfg.health = &monitor;
  const RunReport monitored = MultiStreamScheduler(library(), cfg).run(monitored_jobs);

  EXPECT_EQ(plain.sim_makespan_cycles, monitored.sim_makespan_cycles);
  ASSERT_EQ(plain_jobs.size(), monitored_jobs.size());
  for (std::size_t s = 0; s < plain_jobs.size(); ++s)
    expect_bit_exact(plain_jobs[s], monitored_jobs[s]);
}

TEST(HealthScheduler, CleanRunTripsNothingAndRecordsFlightEvents) {
  auto jobs = mixed_workload(6, 3, 16);
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  cfg.queue.shards = 2;
  health::HealthMonitorConfig mon_cfg;
  mon_cfg.epoch_host_ms = 0.25;
  health::HealthMonitor monitor(mon_cfg);
  telemetry::MetricsRegistry metrics;
  cfg.health = &monitor;
  cfg.metrics = &metrics;

  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(monitor.anomalies_total(), 0u);
  EXPECT_EQ(report.health_anomalies, 0u);
  EXPECT_TRUE(monitor.trips().empty());
  // The run produced dispatch flight events and at least the final tick.
  EXPECT_GT(monitor.flight().recorded(), 0u);
  EXPECT_GE(monitor.epochs(), 1u);
  const auto snaps = monitor.snapshots();
  ASSERT_FALSE(snaps.empty());
  // Epochs strictly monotone; the final snapshot sees the drained queue.
  for (std::size_t i = 1; i < snaps.size(); ++i)
    EXPECT_GT(snaps[i].epoch, snaps[i - 1].epoch);
  EXPECT_EQ(snaps.back().queue.depth, 0u);
  EXPECT_GT(snaps.back().queue.completions, 0u);
  // Exported into the metrics registry.
  const auto it = metrics.counters().find("health_anomalies_total");
  ASSERT_NE(it, metrics.counters().end());
  EXPECT_EQ(it->second, 0u);
  // The dump is well-formed enough to carry its schema stamp.
  const std::string json = monitor.health_json(report.wall_seconds);
  EXPECT_NE(json.find("\"kind\": \"health\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_recorder\""), std::string::npos);
}

// ---- metrics timeline cap (satellite fix) ------------------------------

TEST(MetricsTimelines, EpochCapIsConfigurableAndDropsAreAccounted) {
  telemetry::MetricsRegistry m;
  EXPECT_EQ(m.timeline_epoch_cap(), 32u);
  m.set_timeline_epoch_cap(8);
  std::vector<double> samples(20, 1.0);
  m.timeline("queue_depth", samples);
  EXPECT_EQ(m.timelines().at("queue_depth").size(), 8u);
  EXPECT_EQ(m.epochs_dropped(), 12u);
  // The exporter surfaces the loss instead of hiding it.
  const std::string json = telemetry::metrics_json(m, 0.0);
  EXPECT_NE(json.find("\"epochs_dropped\": 12"), std::string::npos);
  // Raising the cap stops the dropping.
  m.set_timeline_epoch_cap(64);
  m.timeline("fabric0_utilization", samples);
  EXPECT_EQ(m.timelines().at("fabric0_utilization").size(), 20u);
  EXPECT_EQ(m.epochs_dropped(), 12u);
}

}  // namespace
}  // namespace dsra::runtime
