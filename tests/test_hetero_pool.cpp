// Heterogeneous fabric pools: the geometry-indexed kernel library's
// placement-feasibility matrix (property-tested: every fits() pair
// round-trips compile -> place/route -> bitstream -> frame image, every
// unfit pair is rejected with a named diagnostic), feasibility-aware
// dispatch over pools of mixed array sizes (bit-exact against the
// homogeneous pool), the pool-rejection paths' exact diagnostics, and
// the delta-aware context-cache fetch.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "soc/trajectory.hpp"

namespace dsra::runtime {
namespace {

// Compiling the library is expensive (six DCT place-and-route runs plus
// the ME context, per geometry); share one two-geometry instance.
const KernelLibrary& library() {
  static const KernelLibrary lib(
      KernelLibraryConfig{{kDefaultGeometry, kSmallSccGeometry}});
  return lib;
}

FabricConfig fabric_with_geometry(const ArrayGeometry& geometry) {
  FabricConfig cfg;
  cfg.geometry = geometry;
  return cfg;
}

StreamJob job_with_condition(int id, soc::RuntimeCondition condition, int frames = 2,
                             int size = 32) {
  StreamConfig cfg;
  cfg.name = "s" + std::to_string(id);
  cfg.width = size;
  cfg.height = size;
  cfg.frame_budget = frames;
  cfg.condition = condition;
  cfg.codec.me_range = 4;
  cfg.seed = 4200 + static_cast<std::uint64_t>(id);
  return make_synthetic_job(id, cfg);
}

TEST(FeasibilityMatrix, MatchesThePaperShapedExpectations) {
  // The full 12x8 DA array hosts every context; the small 8x4 array
  // hosts the scc family but neither CORDIC mapping (site shortage /
  // routing congestion) nor the systolic ME context.
  for (const std::string& name : library().context_names())
    EXPECT_TRUE(library().fits(name, kDefaultGeometry)) << name;

  EXPECT_TRUE(library().fits("scc_full", kSmallSccGeometry));
  EXPECT_TRUE(library().fits("scc_even_odd", kSmallSccGeometry));
  EXPECT_TRUE(library().fits("da_basic", kSmallSccGeometry));
  EXPECT_TRUE(library().fits("mixed_rom", kSmallSccGeometry));
  EXPECT_FALSE(library().fits("cordic1", kSmallSccGeometry));
  EXPECT_FALSE(library().fits("cordic2", kSmallSccGeometry));
  EXPECT_FALSE(library().fits(kMeContextName, kSmallSccGeometry));

  // Unknown names and unknown geometries are never feasible.
  EXPECT_FALSE(library().fits("nope", kDefaultGeometry));
  EXPECT_FALSE(library().fits("scc_full", ArrayGeometry{4, 2}));
}

TEST(FeasibilityMatrix, EveryFeasiblePairRoundTripsToABitstreamAndFrameImage) {
  for (const ArrayGeometry& geometry : library().geometries()) {
    for (const std::string& name : library().context_names()) {
      if (!library().fits(name, geometry)) continue;
      // Compile produced a real bitstream for this geometry...
      EXPECT_FALSE(library().bitstream(name, geometry).empty())
          << name << " @ " << to_string(geometry);
      // ...and a frame-addressable image whose frames all sit inside the
      // compiled array's grid and survive the codec round trip bit for
      // bit (the partial-reconfiguration contract).
      const ConfigFrameImage& image = library().frame_image(name, geometry);
      EXPECT_GT(image.frames.size(), 0u) << name << " @ " << to_string(geometry);
      if (library().kernel_of(name) == "dct") {
        EXPECT_EQ(image.width, geometry.width) << name;
        EXPECT_EQ(image.height, geometry.height) << name;
      }
      for (const ConfigFrame& frame : image.frames) {
        EXPECT_GE(frame.x, 0);
        EXPECT_GE(frame.y, 0);
        EXPECT_LT(frame.x, image.width);
        EXPECT_LT(frame.y, image.height);
      }
      EXPECT_EQ(decode_config_frames(encode_config_frames(image)), image)
          << name << " @ " << to_string(geometry);
      // A fabric of this geometry can actually prepare (fetch + switch
      // onto) the context.
      Fabric fabric(0, library(), fabric_with_geometry(geometry));
      EXPECT_GT(fabric.prepare(name), 0u) << name << " @ " << to_string(geometry);
      ASSERT_TRUE(fabric.active().has_value());
      EXPECT_EQ(*fabric.active(), name);
    }
  }
}

TEST(FeasibilityMatrix, EveryUnfitPairIsRejectedWithNamedDiagnostics) {
  for (const ArrayGeometry& geometry : library().geometries()) {
    for (const std::string& name : library().context_names()) {
      if (library().fits(name, geometry)) continue;
      // The library records the mapper's own failure and names both
      // sides of the pair on lookup.
      const std::string& reason = library().unfit_reason(name, geometry);
      EXPECT_FALSE(reason.empty()) << name << " @ " << to_string(geometry);
      try {
        (void)library().bitstream(name, geometry);
        FAIL() << "bitstream lookup must reject the unfit pair " << name;
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()), "implementation '" + name +
                                             "' does not fit array geometry " +
                                             to_string(geometry) + ": " + reason);
      }
      // Fabric::prepare rejects with the fabric, geometry and reason.
      Fabric fabric(7, library(), fabric_with_geometry(geometry));
      try {
        (void)fabric.prepare(name);
        FAIL() << "prepare must reject the unfit pair " << name;
      } catch (const std::invalid_argument& e) {
        EXPECT_EQ(std::string(e.what()), "fabric 7 (geometry " + to_string(geometry) +
                                             ") cannot host context '" + name +
                                             "': " + reason);
      }
      EXPECT_FALSE(fabric.hosts(name));
    }
  }
}

TEST(FeasibilityMatrix, DeltaTablesAreScopedPerGeometry) {
  // The scc_full <-> da_basic pair has a delta on both geometries (same
  // DA grid within each geometry), and the two geometries' deltas are
  // independent objects diffed over different grids.
  const ConfigDelta* large = library().delta(kDefaultGeometry, "scc_full", "da_basic");
  const ConfigDelta* small = library().delta(kSmallSccGeometry, "scc_full", "da_basic");
  ASSERT_NE(large, nullptr);
  ASSERT_NE(small, nullptr);
  EXPECT_EQ(large->width, kDefaultGeometry.width);
  EXPECT_EQ(small->width, kSmallSccGeometry.width);
  // No delta crosses into a geometry where one side does not fit.
  EXPECT_EQ(library().delta(kSmallSccGeometry, "scc_full", "cordic1"), nullptr);
  // The ME context lives on its own grid: no delta against DCT contexts.
  EXPECT_EQ(library().delta(kDefaultGeometry, "scc_full", kMeContextName), nullptr);
}

TEST(FabricPool, AtRejectsOutOfRangeIndicesWithExactDiagnostics) {
  FabricPool pool(2, library(), FabricConfig{});
  try {
    (void)pool.at(2);
    FAIL() << "index 2 of a 2-fabric pool must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_EQ(std::string(e.what()), "fabric pool: index 2 out of range [0, 2)");
  }
  try {
    (void)pool.at(-1);
    FAIL() << "negative indices must throw";
  } catch (const std::out_of_range& e) {
    EXPECT_EQ(std::string(e.what()), "fabric pool: index -1 out of range [0, 2)");
  }
}

TEST(SchedulerConfigNormalization, BothConstructionPathsResolveToOneVector) {
  SchedulerConfig homogeneous;
  homogeneous.fabrics = 3;
  homogeneous.fabric.context_capacity_bytes = 1234;
  const std::vector<FabricConfig> resolved = homogeneous.resolved_fabrics();
  ASSERT_EQ(resolved.size(), 3u);
  for (const FabricConfig& cfg : resolved)
    EXPECT_EQ(cfg.context_capacity_bytes, 1234u);

  SchedulerConfig heterogeneous;
  heterogeneous.fabrics = 99;  // ignored: the explicit list wins
  heterogeneous.fabric_configs = {fabric_with_geometry(kDefaultGeometry),
                                  fabric_with_geometry(kSmallSccGeometry)};
  ASSERT_EQ(heterogeneous.resolved_fabrics().size(), 2u);
  EXPECT_EQ(heterogeneous.resolved_fabrics()[1].geometry, kSmallSccGeometry);

  SchedulerConfig empty;
  empty.fabrics = 0;
  EXPECT_THROW((void)empty.resolved_fabrics(), std::invalid_argument);

  // The scheduler is the single validation site: a fabric geometry the
  // library was not built for is rejected at construction.
  SchedulerConfig unknown_geometry;
  unknown_geometry.fabric_configs = {fabric_with_geometry(ArrayGeometry{4, 2})};
  try {
    MultiStreamScheduler scheduler(library(), unknown_geometry);
    FAIL() << "unknown geometry must be rejected at scheduler construction";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "fabric 0: kernel library was not built for array geometry 4x2; "
              "list it in KernelLibraryConfig.geometries");
  }
}

TEST(PoolRejection, WorkloadThatFitsNoFabricGeometryFailsFastByName) {
  // Two small fabrics, a high-battery stream: the policy selects
  // cordic1, which places on neither geometry.
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with_geometry(kSmallSccGeometry),
                        fabric_with_geometry(kSmallSccGeometry)};
  std::vector<StreamJob> jobs;
  jobs.push_back(job_with_condition(0, {1.0, 1.0}));  // -> cordic1
  MultiStreamScheduler scheduler(library(), cfg);
  try {
    (void)scheduler.run(jobs);
    FAIL() << "an unplaceable workload must be rejected up front";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "stream 's0': implementation 'cordic1' selected at frame 0 is not "
              "placeable on any DCT-capable fabric in the pool (geometries: 8x4, 8x4)");
  }
}

TEST(PoolRejection, TrajectoryDriftingOntoUnplaceableImplFailsFastNamingTheFrame) {
  // Battery *charges* mid-stream: the per-frame policy starts on
  // scc_full (placeable on the small pool) and drifts onto cordic1
  // (placeable nowhere in this pool). Validation must name the impl and
  // the exact frame the trajectory first selects it at.
  StreamConfig cfg;
  cfg.name = "charging";
  cfg.width = 32;
  cfg.height = 32;
  cfg.frame_budget = 12;
  cfg.trajectory = soc::linear_battery_drain(0.1, -0.1, 1.0);  // 0.1, 0.2, ... rising
  cfg.condition_policy = soc::ConditionPolicy::kPerFrame;
  cfg.codec.me_range = 4;
  std::vector<StreamJob> jobs{make_synthetic_job(0, cfg)};
  ASSERT_EQ(jobs[0].frame_impls.size(), 12u);
  ASSERT_EQ(jobs[0].frame_impls.front(), "scc_full") << "drift test premise broken";

  // The first frame whose selected impl no longer places on the small
  // geometry is what validation must name (the policy walks scc_full ->
  // ... -> cordic2 -> cordic1 as the battery charges).
  int drift_frame = -1;
  std::string drift_impl;
  for (std::size_t f = 0; f < jobs[0].frame_impls.size(); ++f)
    if (!library().fits(jobs[0].frame_impls[f], kSmallSccGeometry)) {
      drift_frame = static_cast<int>(f);
      drift_impl = jobs[0].frame_impls[f];
      break;
    }
  ASSERT_GT(drift_frame, 0) << "the trajectory must drift off the small geometry";

  SchedulerConfig sched;
  sched.fabric_configs = {fabric_with_geometry(kSmallSccGeometry)};
  MultiStreamScheduler scheduler(library(), sched);
  try {
    (void)scheduler.run(jobs);
    FAIL() << "the drifting stream must be rejected up front";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "stream 'charging': implementation '" + drift_impl +
                  "' selected at frame " + std::to_string(drift_frame) +
                  " is not placeable on any DCT-capable fabric in the pool "
                  "(geometries: 8x4)");
  }
  // The same stream runs fine once a full-size fabric joins the pool.
  sched.fabric_configs.push_back(fabric_with_geometry(kDefaultGeometry));
  std::vector<StreamJob> ok_jobs{make_synthetic_job(0, cfg)};
  const RunReport report = MultiStreamScheduler(library(), sched).run(ok_jobs);
  EXPECT_EQ(report.total_frames, 12u);
}

TEST(PoolRejection, StagePipelineNeedsAnMeCapableFabricThatPlacesTheMeContext) {
  // The only ME-capable fabric is small: it has the capability bit but
  // me_systolic does not place on 8x4, so the stage pipeline must be
  // rejected with the placement variant of the diagnostic.
  SchedulerConfig cfg;
  FabricConfig small_me = fabric_with_geometry(kSmallSccGeometry);
  small_me.capabilities = kCapMotionEstimation;
  FabricConfig large_dct = fabric_with_geometry(kDefaultGeometry);
  large_dct.capabilities = kCapDctTransform;
  cfg.fabric_configs = {small_me, large_dct};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  std::vector<StreamJob> jobs{job_with_condition(0, {0.1, 0.9}, 3)};  // scc_full
  MultiStreamScheduler scheduler(library(), cfg);
  try {
    (void)scheduler.run(jobs);
    FAIL() << "an ME-capable fabric that cannot place me_systolic is not enough";
  } catch (const std::invalid_argument& e) {
    EXPECT_EQ(std::string(e.what()),
              "stage pipeline needs a motion-estimation-capable fabric that can place "
              "'me_systolic' (pool geometries: 8x4, 12x8)");
  }
}

TEST(HeteroDispatch, FeasibilityFilterRoutesEveryJobToAHostingFabric) {
  // One full-size fabric and two small scc-only fabrics; a workload
  // mixing cordic streams (large-only) with scc/mixed_rom streams.
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with_geometry(kDefaultGeometry),
                        fabric_with_geometry(kSmallSccGeometry),
                        fabric_with_geometry(kSmallSccGeometry)};
  std::vector<StreamJob> jobs;
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // cordic1: large only
      {0.1, 0.9},  // scc_full
      {0.5, 0.9},  // cordic2: large only
      {0.9, 0.3},  // mixed_rom
      {0.1, 0.9},  // scc_full
      {0.9, 0.3},  // mixed_rom
  };
  for (int k = 0; k < 6; ++k) jobs.push_back(job_with_condition(k, conditions[k % 6], 3));
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 18u);
  // Feasibility routing: cordic frames only ever ran on fabric 0 (the
  // full-size array).
  for (const StreamJob& s : jobs) {
    for (const FrameRecord& r : s.records) {
      if (r.impl == "cordic1" || r.impl == "cordic2") {
        EXPECT_EQ(r.fabric_id, 0) << s.config.name << " frame " << r.frame_index;
      }
    }
  }
  // The small fabrics had to route around capability-eligible cordic
  // jobs, and the report says so per geometry.
  EXPECT_GT(report.placement_rejections, 0u);
  ASSERT_EQ(report.geometry_stats.size(), 2u);
  EXPECT_EQ(report.geometry_stats[0].geometry, kDefaultGeometry);
  EXPECT_EQ(report.geometry_stats[0].fabrics, 1);
  EXPECT_EQ(report.geometry_stats[1].geometry, kSmallSccGeometry);
  EXPECT_EQ(report.geometry_stats[1].fabrics, 2);
  EXPECT_EQ(report.geometry_stats[0].placement_rejections, 0u)
      << "the full-size array hosts everything";
  EXPECT_GT(report.geometry_stats[1].placement_rejections, 0u);
  EXPECT_EQ(report.total_tiles, 96 + 32 + 32);
}

TEST(HeteroDispatch, StagePipelineRoutesByCapabilityAndFeasibilityTogether) {
  // The paper's floorplan, cost-reduced: a full-size ME-only fabric, a
  // full-size transform fabric, and a small transform fabric. Stage jobs
  // must route by kernel capability (ME jobs to fabric 0) AND placement
  // feasibility (cordic DCT stages never on the small fabric 2).
  SchedulerConfig cfg;
  FabricConfig me_fabric = fabric_with_geometry(kDefaultGeometry);
  me_fabric.capabilities = kCapMotionEstimation;
  FabricConfig large_dct = fabric_with_geometry(kDefaultGeometry);
  large_dct.capabilities = kCapDctTransform;
  FabricConfig small_dct = fabric_with_geometry(kSmallSccGeometry);
  small_dct.capabilities = kCapDctTransform;
  cfg.fabric_configs = {me_fabric, large_dct, small_dct};
  cfg.queue.mode = DispatchMode::kStagePipeline;

  std::vector<StreamJob> jobs;
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0}, {0.1, 0.9}, {0.5, 0.9}, {0.9, 0.3}};  // cordic1/scc/cordic2/mixed
  for (int k = 0; k < 4; ++k) jobs.push_back(job_with_condition(k, conditions[k], 4));
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 16u);
  for (const StreamJob& s : jobs) {
    ASSERT_EQ(s.records.size(), 4u) << s.config.name;
    for (const FrameRecord& r : s.records) {
      if (r.frame_index > 0) {
        EXPECT_EQ(r.me_fabric_id, 0) << s.config.name << ": ME runs on the ME fabric";
      }
      if (r.impl == "cordic1" || r.impl == "cordic2") {
        EXPECT_EQ(r.tq_fabric_id, 1) << s.config.name << ": cordic only fits the large array";
        EXPECT_EQ(r.fabric_id, 1) << s.config.name;
      } else {
        EXPECT_NE(r.tq_fabric_id, 0) << s.config.name << ": DCT never on the ME fabric";
      }
    }
  }
}

TEST(HeteroDispatch, EncodedOutputIsBitExactAcrossPoolShapes) {
  // The functional model is geometry-independent: encoding over the
  // heterogeneous pool must produce bit-identical streams to the
  // homogeneous full-size pool.
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0}, {0.1, 0.9}, {0.9, 0.3}, {0.5, 0.9}};
  const auto workload = [&] {
    std::vector<StreamJob> jobs;
    for (int k = 0; k < 4; ++k) jobs.push_back(job_with_condition(k, conditions[k], 3));
    return jobs;
  };

  SchedulerConfig hetero;
  hetero.fabric_configs = {fabric_with_geometry(kDefaultGeometry),
                           fabric_with_geometry(kSmallSccGeometry),
                           fabric_with_geometry(kSmallSccGeometry)};
  auto hetero_jobs = workload();
  (void)MultiStreamScheduler(library(), hetero).run(hetero_jobs);

  SchedulerConfig homog;
  homog.fabrics = 3;
  auto homog_jobs = workload();
  (void)MultiStreamScheduler(library(), homog).run(homog_jobs);

  for (std::size_t s = 0; s < hetero_jobs.size(); ++s) {
    const StreamJob& a = hetero_jobs[s];
    const StreamJob& b = homog_jobs[s];
    ASSERT_EQ(a.records.size(), b.records.size()) << a.config.name;
    EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << a.config.name;
    for (std::size_t k = 0; k < a.records.size(); ++k) {
      EXPECT_EQ(a.records[k].impl, b.records[k].impl);
      EXPECT_EQ(a.records[k].stats.bits, b.records[k].stats.bits);
      EXPECT_EQ(a.records[k].stats.psnr_db, b.records[k].stats.psnr_db);
    }
  }
}

TEST(DeltaFetch, CacheMissMovesOnlyDeltaBytesWhenResidentImageIsKnown) {
  // scc_full and da_basic share their complete cluster programming (PR 4
  // measured zero rewritten frames), so a delta-aware fetch of da_basic
  // over a resident scc_full moves a near-empty delta instead of ~7 KB.
  FabricConfig cfg;
  cfg.delta_fetch = true;
  Fabric fabric(0, library(), cfg);
  const std::uint64_t first_fetch_plus_switch = fabric.prepare("scc_full");
  EXPECT_GT(first_fetch_plus_switch, 0u);
  (void)fabric.prepare("da_basic");

  const ContextCacheStats& stats = fabric.cache().stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.delta_fetches, 1u) << "the second miss had a resident image to diff";
  EXPECT_GT(stats.bytes_saved, 0u);
  const std::size_t full_bytes = library().bitstream("scc_full").size() +
                                 library().bitstream("da_basic").size();
  EXPECT_LT(stats.bytes_fetched, full_bytes);
  EXPECT_EQ(stats.bytes_fetched + stats.bytes_saved, full_bytes);
  // A delta fetch moves fewer bus bytes but still inserts the full
  // stream: the conservation ledger must balance regardless.
  EXPECT_EQ(stats.bytes_inserted, full_bytes);
  EXPECT_TRUE(fabric.cache().byte_balance_ok());

  // Disabled by default: the same walk on a plain fabric moves the full
  // streams and keeps the historical byte balance.
  Fabric plain(1, library(), FabricConfig{});
  (void)plain.prepare("scc_full");
  (void)plain.prepare("da_basic");
  EXPECT_EQ(plain.cache().stats().delta_fetches, 0u);
  EXPECT_EQ(plain.cache().stats().bytes_saved, 0u);
  EXPECT_EQ(plain.cache().stats().bytes_fetched, full_bytes);
}

TEST(DeltaFetch, FallsBackToTheFullStreamAcrossGrids) {
  // The resident DCT image and the ME context live on different grids:
  // no delta exists, so the miss moves the full stream even with
  // delta_fetch enabled.
  FabricConfig cfg;
  cfg.delta_fetch = true;
  Fabric fabric(0, library(), cfg);
  (void)fabric.prepare("scc_full");
  (void)fabric.prepare(kMeContextName);
  const ContextCacheStats& stats = fabric.cache().stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.delta_fetches, 0u);
  EXPECT_EQ(stats.bytes_fetched, library().bitstream("scc_full").size() +
                                     library().bitstream(kMeContextName).size());
  EXPECT_TRUE(fabric.cache().byte_balance_ok());
}

}  // namespace
}  // namespace dsra::runtime
