// Motion estimation: golden full search properties, the cycle-accurate
// systolic model (Figs 10-11), fast-search variants, and the suspended
// (early-abort) full search.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "me/fast_search.hpp"
#include "me/pipeline.hpp"
#include "me/systolic.hpp"
#include "video/metrics.hpp"
#include "video/synthetic.hpp"

namespace dsra::me {
namespace {

video::SyntheticConfig small_config() {
  video::SyntheticConfig cfg;
  cfg.width = 64;
  cfg.height = 64;
  cfg.frames = 2;
  cfg.pan_x = 3;
  cfg.pan_y = -2;
  cfg.noise_sigma = 1.0;
  return cfg;
}

TEST(FullSearch, ZeroDisplacementOnIdenticalFrames) {
  Rng rng(3);
  const video::Frame f = video::textured_frame(48, 48, 8, rng);
  const MotionSearchResult r = full_search(f, f, 16, 16, 16, 8);
  EXPECT_EQ(r.mv, (MotionVector{0, 0}));
  EXPECT_EQ(r.sad, 0);
  EXPECT_EQ(r.candidates_evaluated, 17 * 17);
}

TEST(FullSearch, RecoversPureTranslation) {
  // Frame 1 is frame 0 panned by (3, -2): the best match of a block in
  // frame 1 lies at displacement (pan_x, pan_y) in frame 0.
  auto cfg = small_config();
  cfg.objects.clear();
  cfg.noise_sigma = 0.0;
  const auto frames = video::generate_sequence(cfg);
  const MotionSearchResult r = full_search(frames[1], frames[0], 24, 24, 16, 8);
  EXPECT_EQ(r.mv, (MotionVector{cfg.pan_x, cfg.pan_y}));
  EXPECT_EQ(r.sad, 0);
}

TEST(FullSearch, SadIsOptimalOverTheWindow) {
  const auto frames = video::generate_sequence(small_config());
  const MotionSearchResult r = full_search(frames[1], frames[0], 16, 16, 16, 4);
  for (int dy = -4; dy <= 4; ++dy)
    for (int dx = -4; dx <= 4; ++dx)
      EXPECT_LE(r.sad, video::block_sad(frames[1], frames[0], 16, 16, 16, dx, dy));
}

class SystolicVsGolden : public ::testing::TestWithParam<int> {};

TEST_P(SystolicVsGolden, IdenticalMotionVectorsAndSads) {
  const int range = GetParam();
  const auto frames = video::generate_sequence(small_config());
  SystolicParams params;
  for (int by = 0; by < 48; by += 16) {
    for (int bx = 0; bx < 48; bx += 16) {
      const MotionSearchResult golden = full_search(frames[1], frames[0], bx, by, 16, range);
      const SystolicRun run = systolic_search(frames[1], frames[0], bx, by, range, params);
      EXPECT_EQ(run.result.mv, golden.mv) << "block (" << bx << "," << by << ")";
      EXPECT_EQ(run.result.sad, golden.sad);
      // Every candidate SAD matches the direct computation.
      const auto order = full_search_order(range);
      for (std::size_t k = 0; k < order.size(); ++k)
        ASSERT_EQ(run.all_sads[k], video::block_sad(frames[1], frames[0], bx, by, 16,
                                                    order[k].dx, order[k].dy));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, SystolicVsGolden, ::testing::Values(2, 4, 8));

TEST(Systolic, SteadyStateCyclesMatchThePaper) {
  // Paper: "The first round of SAD calculations would take 16 clock
  // cycles" - thereafter one batch of 4 candidates per 16 cycles.
  SystolicParams params;  // 4 x 16
  const std::uint64_t cycles = systolic_cycles_per_block(8, params);
  const std::uint64_t batches = 5 * 17;  // ceil(17/4) bands * 17 dx
  EXPECT_EQ(cycles, batches * 16 + 16 + 4);  // + fill (15 + tree 4 + 1)
}

TEST(Systolic, BandwidthReductionFromModuleOverlap) {
  const auto frames = video::generate_sequence(small_config());
  const SystolicRun run = systolic_search(frames[1], frames[0], 16, 16, 8, {});
  // 4 modules sharing overlapping search rows: 19 rows fetched instead of
  // 64 per full-occupancy batch column (the last, partially idle band
  // dilutes the average, so the overall ratio lands near 0.34).
  EXPECT_LT(run.ref_pixels_fetched * 5, run.ref_pixels_fetched_naive * 2);
  // Current block fetched once for the whole search.
  EXPECT_EQ(run.cur_pixels_fetched, 256u);
  EXPECT_GT(run.pe_utilization, 0.5);
  EXPECT_LE(run.pe_utilization, 1.0);
}

class SystolicBlockSizes : public ::testing::TestWithParam<int> {};

TEST_P(SystolicBlockSizes, MatchesGoldenForAllPaperBlockSizes) {
  // Paper, SAD definition: "N is the size of the block (could be 8, 16 or
  // 32)". The systolic model is parametric in N.
  const int n = GetParam();
  auto cfg = small_config();
  cfg.width = 96;
  cfg.height = 96;
  const auto frames = video::generate_sequence(cfg);
  SystolicParams params;
  params.block = n;
  const MotionSearchResult golden = full_search(frames[1], frames[0], 32, 32, n, 4);
  const SystolicRun run = systolic_search(frames[1], frames[0], 32, 32, 4, params);
  EXPECT_EQ(run.result.mv, golden.mv);
  EXPECT_EQ(run.result.sad, golden.sad);
  // Cycle count scales linearly in N (N cycles per candidate batch).
  EXPECT_EQ(run.cycles, systolic_cycles_per_block(4, params));
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, SystolicBlockSizes, ::testing::Values(8, 16, 32));

TEST(Systolic, UtilizationAccountsForIdleModulesInLastBand) {
  // Range 2 -> 5 dy values over 4 modules -> last band 1/4 occupied.
  const auto frames = video::generate_sequence(small_config());
  const SystolicRun run = systolic_search(frames[1], frames[0], 16, 16, 2, {});
  EXPECT_LT(run.pe_utilization, 0.9);
}

TEST(FastSearch, ThreeStepFindsPureTranslationExactly) {
  auto cfg = small_config();
  cfg.objects.clear();
  cfg.noise_sigma = 0.0;
  const auto frames = video::generate_sequence(cfg);
  const MotionSearchResult r = three_step_search(frames[1], frames[0], 24, 24, 16, 8);
  EXPECT_EQ(r.mv, (MotionVector{cfg.pan_x, cfg.pan_y}));
  // TSS evaluates far fewer candidates than the 289 of full search.
  EXPECT_LT(r.candidates_evaluated, 40);
}

TEST(FastSearch, DiamondFindsPureTranslationExactly) {
  auto cfg = small_config();
  cfg.objects.clear();
  cfg.noise_sigma = 0.0;
  const auto frames = video::generate_sequence(cfg);
  const MotionSearchResult r = diamond_search(frames[1], frames[0], 24, 24, 16, 8);
  EXPECT_EQ(r.mv, (MotionVector{cfg.pan_x, cfg.pan_y}));
}

TEST(FastSearch, FastSadNeverBeatsGolden) {
  const auto frames = video::generate_sequence(small_config());
  for (int bx = 0; bx < 48; bx += 16) {
    const MotionSearchResult golden = full_search(frames[1], frames[0], bx, 16, 16, 8);
    const MotionSearchResult tss = three_step_search(frames[1], frames[0], bx, 16, 16, 8);
    const MotionSearchResult ds = diamond_search(frames[1], frames[0], bx, 16, 16, 8);
    EXPECT_GE(tss.sad, golden.sad);
    EXPECT_GE(ds.sad, golden.sad);
  }
}

TEST(SuspendedSearch, ExactResultWithFewerOperations) {
  const auto frames = video::generate_sequence(small_config());
  for (int bx = 0; bx < 48; bx += 16) {
    const MotionSearchResult golden = full_search(frames[1], frames[0], bx, 32, 16, 8);
    const SuspendedSearchResult s = suspended_full_search(frames[1], frames[0], bx, 32, 16, 8);
    EXPECT_EQ(s.result.mv, golden.mv);
    EXPECT_EQ(s.result.sad, golden.sad);
    EXPECT_GT(s.saved_fraction(), 0.1) << "suspension should skip a meaningful fraction of rows";
  }
}

TEST(Pipeline, FieldComparisonAgainstGoldenIsIdentityForSystolic) {
  const auto frames = video::generate_sequence(small_config());
  const auto golden =
      motion_field(frames[1], frames[0], 16, 4,
                   [](const Frame& c, const Frame& r, int x, int y, int n, int rg) {
                     return full_search(c, r, x, y, n, rg);
                   });
  const auto systolic = motion_field(frames[1], frames[0], 16, 4, systolic_search_fn());
  const FieldComparison cmp = compare_fields(systolic, golden);
  EXPECT_EQ(cmp.identical_mvs, cmp.blocks);
  EXPECT_DOUBLE_EQ(cmp.mean_sad_ratio, 1.0);
}

}  // namespace
}  // namespace dsra::me
