// Integration: the systolic PE netlist simulated on the ME fabric computes
// the same motion vectors as the golden full search, and the netlist
// places-and-routes onto the Fig 2 architecture.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "me/systolic.hpp"
#include "mapper/flow.hpp"
#include "video/synthetic.hpp"

namespace dsra::me {
namespace {

SystolicParams small_params() {
  SystolicParams p;
  p.block = 4;
  p.modules = 2;
  return p;
}

TEST(MeNetlist, ValidAndMatchesFig10Structure) {
  const SystolicParams p = small_params();
  const Netlist nl = build_systolic_netlist(p);
  EXPECT_EQ(nl.validate(), "");
  const ClusterCensus c = nl.census();
  // Per module: block cur regs (shared once) are counted globally.
  EXPECT_EQ(c.mux_regs, p.block + p.modules * p.block);
  EXPECT_EQ(c.abs_diffs, p.modules * p.block);
  // Tree (block-1 adders) + SAD accumulator per module.
  EXPECT_EQ(c.adders, p.modules * (p.block - 1));
  EXPECT_EQ(c.accumulators, p.modules);
  EXPECT_EQ(c.comparators, p.modules);
}

TEST(MeNetlist, FullSizePaperArrayCensus) {
  // The paper's 4 x 16 array: 64 PEs.
  SystolicParams p;
  const Netlist nl = build_systolic_netlist(p);
  const ClusterCensus c = nl.census();
  EXPECT_EQ(c.abs_diffs, 64);
  EXPECT_EQ(c.mux_regs, 16 + 64);
  EXPECT_EQ(c.adders, 4 * 15);
  EXPECT_EQ(c.accumulators, 4);
  EXPECT_EQ(c.comparators, 4);
}

TEST(MeNetlist, SimulatedSearchMatchesGolden) {
  const SystolicParams p = small_params();
  const Netlist nl = build_systolic_netlist(p);
  Simulator sim(nl);

  video::SyntheticConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.frames = 2;
  cfg.pan_x = 1;
  cfg.pan_y = 1;
  cfg.noise_sigma = 0.5;
  const auto frames = video::generate_sequence(cfg);

  for (int bx = 8; bx <= 16; bx += 4) {
    const NetlistSearchResult got =
        run_systolic_netlist(sim, frames[1], frames[0], bx, 12, 2, p);
    const MotionSearchResult want = full_search(frames[1], frames[0], bx, 12, p.block, 2);
    EXPECT_EQ(got.mv, want.mv) << "block x " << bx;
    EXPECT_EQ(got.sad, want.sad);
    EXPECT_GT(got.cycles, 0u);
  }
}

TEST(MeNetlist, CompilesOntoMotionEstimationFabric) {
  const SystolicParams p = small_params();
  const Netlist nl = build_systolic_netlist(p);
  const ArrayArch arch = ArrayArch::motion_estimation(6, 4, ChannelSpec{6, 12});
  map::FlowParams params;
  params.place.seed = 11;
  const map::CompiledDesign design = map::compile(nl, arch, params);
  EXPECT_TRUE(design.routes.success);
  EXPECT_GT(design.timing.fmax_mhz, 0.0);

  // Extracted design still finds correct motion vectors.
  const map::ExtractedDesign ex = map::extract_design(arch, design.bitstream);
  Simulator sim(ex.netlist);
  video::SyntheticConfig cfg;
  cfg.width = 32;
  cfg.height = 32;
  cfg.frames = 2;
  cfg.pan_x = -1;
  cfg.pan_y = 2;
  cfg.noise_sigma = 0.0;
  cfg.objects.clear();
  const auto frames = video::generate_sequence(cfg);
  const NetlistSearchResult got = run_systolic_netlist(sim, frames[1], frames[0], 12, 12, 2, p);
  const MotionSearchResult want = full_search(frames[1], frames[0], 12, 12, p.block, 2);
  EXPECT_EQ(got.mv, want.mv);
  EXPECT_EQ(got.sad, want.sad);
}

}  // namespace
}  // namespace dsra::me
