// Netlist construction / validation and the cycle-accurate simulator:
// levelisation, combinational-loop detection, register feedback, activity
// counting.
#include <gtest/gtest.h>

#include "core/sim.hpp"

namespace dsra {
namespace {

TEST(Netlist, BuildAndCensus) {
  Netlist nl("t");
  const NetId a = nl.add_input("a", 16);
  const NetId b = nl.add_input("b", 16);
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(add, "a", a);
  nl.connect_input(add, "b", b);
  nl.add_output("y", nl.output_net(add, "y"));

  EXPECT_EQ(nl.validate(), "");
  EXPECT_EQ(nl.census().adders, 1);
  EXPECT_EQ(nl.census().total(), 1);
  EXPECT_TRUE(nl.find_input("a").has_value());
  EXPECT_TRUE(nl.find_output("y").has_value());
  EXPECT_FALSE(nl.find_input("zzz").has_value());
}

TEST(Netlist, ValidationFindsUndrivenNetsAndWidthMismatch) {
  Netlist nl("t");
  const NetId floating = nl.add_net("floating", 8);
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(add, "a", floating);
  EXPECT_NE(nl.validate(), "");

  Netlist nl2("t2");
  const NetId wide = nl2.add_input("wide", 32);
  const NodeId add2 = nl2.add_node("add", AddShiftCfg{8, AddShiftOp::kAdd, 0, false});
  nl2.connect_input(add2, "a", wide);  // 8-bit port reading 32-bit net
  EXPECT_NE(nl2.validate(), "");
}

TEST(Netlist, UnknownPortThrows) {
  Netlist nl("t");
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  EXPECT_THROW(nl.connect_input(add, "nope", nl.add_input("a", 16)), std::invalid_argument);
}

TEST(Sim, CombinationalChainSettlesInOneEval) {
  // y = (a + b) - c through two clusters.
  Netlist nl("chain");
  const NetId a = nl.add_input("a", 16);
  const NetId b = nl.add_input("b", 16);
  const NetId c = nl.add_input("c", 16);
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(add, "a", a);
  nl.connect_input(add, "b", b);
  const NodeId sub = nl.add_node("sub", AddShiftCfg{16, AddShiftOp::kSub, 0, false});
  nl.connect_input(sub, "a", nl.output_net(add, "y"));
  nl.connect_input(sub, "b", c);
  nl.add_output("y", nl.output_net(sub, "y"));

  Simulator sim(nl);
  sim.set_input("a", 10);
  sim.set_input("b", 20);
  sim.set_input("c", 5);
  sim.eval();
  EXPECT_EQ(sim.output("y"), 25);
  // Changing an input re-settles without a clock.
  sim.set_input("c", -5);
  sim.eval();
  EXPECT_EQ(sim.output("y"), 35);
  EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Sim, CombinationalLoopIsRejected) {
  Netlist nl("loop");
  const NodeId a = nl.add_node("a", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  const NodeId b = nl.add_node("b", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  const NetId ay = nl.output_net(a, "y");
  const NetId by = nl.output_net(b, "y");
  nl.connect_input(a, "a", by);
  nl.connect_input(b, "a", ay);
  nl.connect_input(a, "b", nl.add_input("x", 16));
  nl.connect_input(b, "b", nl.add_input("z", 16));
  EXPECT_THROW(Simulator sim(nl), CombLoopError);
}

TEST(Sim, RegisteredFeedbackIsLegalAndBehaves) {
  // Accumulator built from a registered adder looping back on itself.
  Netlist nl("acc");
  const NetId x = nl.add_input("x", 16);
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, true});
  const NetId y = nl.output_net(add, "y");
  nl.connect_input(add, "a", x);
  nl.connect_input(add, "b", y);
  nl.add_output("y", y);

  Simulator sim(nl);
  sim.set_input("x", 3);
  sim.step();
  sim.step();
  sim.step();
  EXPECT_EQ(sim.output("y"), 9);
}

TEST(Sim, ResetClearsStateAndActivity) {
  Netlist nl("acc");
  const NetId x = nl.add_input("x", 16);
  const NodeId acc = nl.add_node("acc", AddAccCfg{16, AddAccOp::kAccumulate, false});
  nl.connect_input(acc, "a", x);
  nl.connect_input(acc, "clr", nl.add_input("clr", 1));
  nl.connect_input(acc, "en", nl.add_input("en", 1));
  nl.add_output("y", nl.output_net(acc, "y"));

  Simulator sim(nl);
  sim.set_input("x", 7);
  sim.set_input("en", 1);
  sim.run(3);
  EXPECT_EQ(sim.output("y"), 21);
  EXPECT_GT(sim.total_toggles(), 0u);
  sim.reset();
  EXPECT_EQ(sim.cycle(), 0u);
  EXPECT_EQ(sim.total_toggles(), 0u);
  sim.eval();
  EXPECT_EQ(sim.output("y"), 0);
}

TEST(Sim, ActivityCountsBitTogglesPerNet) {
  Netlist nl("t");
  const NetId x = nl.add_input("x", 8);
  nl.add_output("y", x);
  Simulator sim(nl);
  sim.set_input("x", 0);
  sim.step();
  sim.set_input("x", 0b1111);  // 4 bits toggle
  sim.step();
  sim.set_input("x", 0b1100);  // 2 bits toggle
  sim.step();
  EXPECT_EQ(sim.net_toggles()[static_cast<std::size_t>(x)], 6u);
}

TEST(Sim, UnconnectedInputsReadAsZero) {
  Netlist nl("t");
  const NetId a = nl.add_input("a", 16);
  const NodeId add = nl.add_node("add", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(add, "a", a);
  // "b" left unconnected.
  nl.add_output("y", nl.output_net(add, "y"));
  Simulator sim(nl);
  sim.set_input("a", 42);
  sim.eval();
  EXPECT_EQ(sim.output("y"), 42);
}

TEST(Sim, MultiSinkNetFansOut) {
  Netlist nl("t");
  const NetId x = nl.add_input("x", 16);
  const NodeId a = nl.add_node("a", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(a, "a", x);
  nl.connect_input(a, "b", x);
  const NodeId b = nl.add_node("b", AddShiftCfg{16, AddShiftOp::kShiftLeft, 1, false});
  nl.connect_input(b, "a", x);
  nl.add_output("double1", nl.output_net(a, "y"));
  nl.add_output("double2", nl.output_net(b, "y"));
  Simulator sim(nl);
  sim.set_input("x", 21);
  sim.eval();
  EXPECT_EQ(sim.output("double1"), 42);
  EXPECT_EQ(sim.output("double2"), 42);
}

TEST(Sim, WhiteboxStateAccess) {
  Netlist nl("t");
  const NetId x = nl.add_input("x", 8);
  const NodeId sr = nl.add_node("sr", AddShiftCfg{8, AddShiftOp::kShiftReg, 0, false});
  nl.connect_input(sr, "d", x);
  nl.connect_input(sr, "load", nl.add_input("load", 1));
  nl.connect_input(sr, "en", nl.add_input("en", 1));
  nl.add_output("q", nl.output_net(sr, "q"));
  Simulator sim(nl);
  sim.set_input("x", 0b0101);
  sim.set_input("load", 1);
  sim.step();
  EXPECT_EQ(sim.state(sr).reg, 0b0101);
}

}  // namespace
}  // namespace dsra
