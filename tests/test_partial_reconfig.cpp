// Partial reconfiguration: the ConfigDelta round-trip property over
// random images and over every library context pair, the ReconfigManager
// delta path (charging, fallback, resident-survives-eviction), the
// context cache's pinned frame images, and end-to-end bit-exactness of a
// dynamic scheduler run under partial vs full reloads.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/config_codec.hpp"
#include "runtime/scheduler.hpp"
#include "soc/trajectory.hpp"

namespace dsra {
namespace {

using runtime::KernelLibrary;

// The compiled library (six DCT place-and-route runs plus the ME context)
// is expensive; share one instance across the tests.
const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

/// A random valid cluster configuration of a random kind.
ClusterConfig random_config(Rng& rng) {
  const auto width = [&] { return 4 * (1 + static_cast<int>(rng.next_below(8))); };
  switch (rng.next_below(6)) {
    case 0:
      return MuxRegCfg{width(), rng.next_bool()};
    case 1:
      return AbsDiffCfg{width(), static_cast<AbsDiffOp>(rng.next_below(3)), rng.next_bool()};
    case 2:
      return AddAccCfg{width(), static_cast<AddAccOp>(rng.next_below(3)), rng.next_bool()};
    case 3:
      return CompCfg{width(), static_cast<CompOp>(rng.next_below(4))};
    case 4: {
      AddShiftCfg c{width(), AddShiftOp::kAdd, 0, rng.next_bool()};
      c.op = static_cast<AddShiftOp>(rng.next_below(9));
      c.shift = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(c.width)));
      return c;
    }
    default: {
      MemCfg c;
      c.words = 1 << (2 + rng.next_below(5));
      c.width = rng.next_bool() ? 8 : 4;
      c.mode = rng.next_bool() ? MemMode::kRam : MemMode::kRom;
      c.addr_mode = rng.next_bool() ? MemAddrMode::kBit : MemAddrMode::kWord;
      const std::int64_t hi = (1ll << (c.width - 1)) - 1;
      c.contents.resize(static_cast<std::size_t>(c.words));
      for (auto& v : c.contents) v = rng.next_range(-hi - 1, hi);
      return c;
    }
  }
}

/// A random image on a WxH grid with roughly half the tiles occupied.
ConfigFrameImage random_image(Rng& rng, int width, int height) {
  std::vector<PlacedClusterConfig> placed;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      if (rng.next_bool()) placed.push_back({x, y, random_config(rng)});
  return build_frame_image(width, height, placed);
}

TEST(ConfigDelta, RandomPairRoundTripProperty) {
  Rng rng(41);
  for (int trial = 0; trial < 100; ++trial) {
    const ConfigFrameImage base = random_image(rng, 6, 5);
    const ConfigFrameImage target = random_image(rng, 6, 5);

    const ConfigDelta delta = diff_config_frames(base, target);
    // The round-trip guarantee: base + delta == target, bit-exact (also
    // through the serialised form).
    const ConfigFrameImage applied = apply_config_delta(base, delta);
    ASSERT_EQ(applied, target) << "trial " << trial;
    ASSERT_EQ(encode_config_frames(applied), encode_config_frames(target));
    ASSERT_EQ(decode_config_delta(encode_config_delta(delta)), delta);

    // Minimality bounds: never more frames than both images own, and
    // rewrites never carry more payload than the whole target.
    EXPECT_LE(delta.frame_count(), base.frames.size() + target.frames.size());
    std::size_t rewrite_payload = 0;
    for (const ConfigFrame& f : delta.rewrites) rewrite_payload += f.payload.size();
    EXPECT_LE(rewrite_payload, target.payload_bytes());
  }
}

TEST(ConfigDelta, IdenticalImagesDiffToNothing) {
  Rng rng(77);
  const ConfigFrameImage image = random_image(rng, 5, 4);
  const ConfigDelta delta = diff_config_frames(image, image);
  EXPECT_TRUE(delta.empty());
  EXPECT_EQ(delta.frame_count(), 0u);
  EXPECT_EQ(apply_config_delta(image, delta), image);

  ConfigFrameImage other = random_image(rng, 7, 4);
  EXPECT_THROW((void)diff_config_frames(image, other), std::invalid_argument);
  EXPECT_THROW((void)apply_config_delta(other, delta), std::invalid_argument);
}

TEST(ConfigDelta, LibraryPairwiseTableRoundTripsBitExactly) {
  const KernelLibrary& lib = library();
  const auto names = lib.names();
  for (const std::string& base : names) {
    for (const std::string& target : names) {
      if (base == target) {
        EXPECT_EQ(lib.delta(base, target), nullptr);
        continue;
      }
      const ConfigDelta* delta = lib.delta(base, target);
      ASSERT_NE(delta, nullptr) << base << " -> " << target;
      EXPECT_EQ(apply_config_delta(lib.frame_image(base), *delta),
                lib.frame_image(target))
          << base << " -> " << target;

      const auto cost = lib.delta_cost(base, target);
      ASSERT_TRUE(cost.has_value());
      EXPECT_EQ(cost->delta_bits, config_delta_bits(*delta));
      EXPECT_EQ(cost->frames, delta->frame_count());
      // The delta is never dearer than the full stream for the library's
      // own contexts (the manager would fall back if it were).
      EXPECT_LE(cost->delta_bits,
                static_cast<std::uint64_t>(lib.bitstream(target).size()) * 8)
          << base << " -> " << target;
    }
  }
  // The ME context sits on a different array geometry: no delta, by
  // design — a DCT <-> ME pair must fall back to a full reload.
  EXPECT_EQ(lib.delta("cordic1", runtime::kMeContextName), nullptr);
  EXPECT_FALSE(lib.delta_cost(runtime::kMeContextName, "cordic1").has_value());
  // scc_full shares da_basic's complete cluster programming (its ROMs
  // are the same DA LUTs): the delta is pure header, zero frames.
  EXPECT_EQ(lib.delta("da_basic", "scc_full")->frame_count(), 0u);
}

TEST(PartialReconfig, ManagerChargesDeltaAndFallsBack) {
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 64});
  mgr.store("a", std::vector<std::uint8_t>(1000, 0));
  mgr.store("b", std::vector<std::uint8_t>(1000, 0));
  mgr.store("c", std::vector<std::uint8_t>(1000, 0));
  mgr.enable_partial_reconfig(
      [](const std::string& base,
         const std::string& target) -> std::optional<soc::PartialReloadCost> {
        if (base == "a" && target == "b") return soc::PartialReloadCost{320, 5, 40};
        if (base == "b" && target == "c") return soc::PartialReloadCost{999999, 99, 124999};
        return std::nullopt;  // no delta known for this pair
      });

  // No resident configuration yet: the first activation is a full reload.
  EXPECT_EQ(mgr.activate("a"), 1000u * 8u / 32u + 64u);
  EXPECT_EQ(mgr.full_reloads(), 1u);

  // a -> b has a cheap delta: charge ceil(320 / 32) + 64.
  EXPECT_EQ(mgr.activate("b"), 320u / 32u + 64u);
  EXPECT_EQ(mgr.partial_reloads(), 1u);
  EXPECT_EQ(mgr.frames_rewritten(), 5u);
  EXPECT_EQ(mgr.delta_bytes_loaded(), 40u);

  // b -> c's delta is dearer than the full stream: fall back.
  EXPECT_EQ(mgr.activate("c"), mgr.switch_cycles("c"));
  EXPECT_EQ(mgr.full_reloads(), 2u);

  // c -> a has no delta: fall back.
  EXPECT_EQ(mgr.activate("a"), mgr.switch_cycles("a"));
  EXPECT_EQ(mgr.full_reloads(), 3u);
  EXPECT_EQ(mgr.partial_reloads(), 1u);
  EXPECT_EQ(mgr.frames_rewritten(), 5u);
}

TEST(PartialReconfig, ResidentConfigurationSurvivesEviction) {
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 64});
  mgr.store("x", std::vector<std::uint8_t>(400, 0));
  mgr.enable_partial_reconfig(
      [](const std::string&, const std::string&) -> std::optional<soc::PartialReloadCost> {
        return std::nullopt;
      });

  EXPECT_GT(mgr.activate("x"), 0u);
  ASSERT_TRUE(mgr.resident().has_value());
  EXPECT_EQ(*mgr.resident(), "x");

  // Evicting the active context clears the active marker (PR 3's
  // regression) but the silicon still holds the programming.
  EXPECT_TRUE(mgr.evict("x"));
  EXPECT_FALSE(mgr.active().has_value());
  ASSERT_TRUE(mgr.resident().has_value());
  EXPECT_EQ(*mgr.resident(), "x");

  // Re-store + re-activate: the programming never left the fabric, so
  // the partial path charges only the handshake, not the full stream.
  mgr.store("x", std::vector<std::uint8_t>(400, 0));
  EXPECT_EQ(mgr.activate("x"), 64u);
  EXPECT_EQ(mgr.partial_reloads(), 1u);
}

TEST(PartialReconfig, CachePinsTheResidentFrameImage) {
  const KernelLibrary& lib = library();
  soc::ReconfigManager mgr;
  soc::Bus bus;
  runtime::ContextCache cache(
      mgr, bus, [&](const std::string& name) -> const std::vector<std::uint8_t>& {
        return lib.bitstream(name);
      },
      runtime::ContextCacheConfig{}, nullptr,
      [&](const std::string& name) -> const ConfigFrameImage* {
        return &lib.frame_image(name);
      });

  (void)cache.touch("cordic1");
  (void)mgr.activate("cordic1");
  ASSERT_NE(cache.frame_image("cordic1"), nullptr);

  // The eviction race: the store drops the context the fabric is
  // running. Its bytes are gone (a re-activation must re-store and pay),
  // but the silicon still holds the programming, so the frame image is
  // pinned as the delta base for the *next* switch.
  EXPECT_TRUE(mgr.evict("cordic1"));
  EXPECT_FALSE(cache.resident("cordic1"));
  ASSERT_NE(cache.frame_image("cordic1"), nullptr) << "resident image must be pinned";

  (void)cache.touch("cordic2");
  const auto cost = cache.delta_cost("cordic1", "cordic2");
  ASSERT_TRUE(cost.has_value());
  EXPECT_EQ(cost->delta_bits, lib.delta_cost("cordic1", "cordic2")->delta_bits);

  // Once the fabric switches away and trim() runs, the stale image is
  // dropped with its context: it can no longer be anyone's delta base.
  (void)mgr.activate("cordic2");
  cache.trim();
  EXPECT_EQ(cache.frame_image("cordic1"), nullptr);
  EXPECT_FALSE(cache.delta_cost("cordic1", "cordic2").has_value());
  ASSERT_NE(cache.frame_image("cordic2"), nullptr);
}

/// A draining/fading mixed workload whose impls change mid-flight.
std::vector<runtime::StreamJob> dynamic_workload(int frames) {
  const soc::TrajectoryPtr trajectories[] = {
      soc::linear_battery_drain(0.95, 0.15, 0.9),
      soc::sinusoidal_channel_fade(0.9, 0.5, 0.2, 4.0),
      soc::stepped_channel_fade(0.9, {0.9, 0.3, 0.9}, 2),
      soc::jittered_trajectory(soc::constant_trajectory({0.6, 0.9}), 11, 0.05),
  };
  std::vector<runtime::StreamJob> jobs;
  int id = 0;
  for (const auto& t : trajectories) {
    runtime::StreamConfig cfg;
    cfg.name = "dyn" + std::to_string(id);
    cfg.width = 32;
    cfg.height = 32;
    cfg.frame_budget = frames;
    cfg.trajectory = t;
    cfg.condition_policy = soc::ConditionPolicy::kHysteresis;
    cfg.hysteresis_band = 0.06;
    cfg.codec.me_range = 4;
    cfg.seed = 400 + static_cast<std::uint64_t>(id) * 7;
    jobs.push_back(runtime::make_synthetic_job(id, cfg));
    ++id;
  }
  return jobs;
}

TEST(PartialReconfig, SchedulerRunIsBitExactAndCheaper) {
  runtime::SchedulerConfig cfg;
  cfg.fabrics = 1;  // deterministic dispatch order
  cfg.fabric.reconfig_port.width_bits = 4;

  auto full_jobs = dynamic_workload(6);
  const runtime::RunReport full =
      runtime::MultiStreamScheduler(library(), cfg).run(full_jobs);

  cfg.fabric.partial_reconfig = true;
  auto part_jobs = dynamic_workload(6);
  const runtime::RunReport part =
      runtime::MultiStreamScheduler(library(), cfg).run(part_jobs);

  EXPECT_EQ(full.total_frames, part.total_frames);
  EXPECT_EQ(full.total_switches, part.total_switches) << "same switch sequence";
  EXPECT_EQ(full.partial_reloads, 0u);
  EXPECT_GT(part.partial_reloads, 0u);
  EXPECT_GT(part.frames_rewritten, 0u);
  EXPECT_LT(part.total_reconfig_cycles, full.total_reconfig_cycles);
  // The delta cycles flow through the modeled makespan, so cheap
  // switches shorten the modeled schedule, not just a counter.
  EXPECT_LT(part.sim_makespan_cycles, full.sim_makespan_cycles);

  // Partial reconfiguration may change what the port shifts, never what
  // the fabric computes: every frame bit-exact vs the full-reload run.
  for (std::size_t s = 0; s < full_jobs.size(); ++s) {
    const runtime::StreamJob& a = full_jobs[s];
    const runtime::StreamJob& b = part_jobs[s];
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t k = 0; k < a.records.size(); ++k) {
      EXPECT_EQ(a.records[k].impl, b.records[k].impl);
      EXPECT_EQ(a.records[k].frame_index, b.records[k].frame_index);
      EXPECT_DOUBLE_EQ(a.records[k].stats.bits, b.records[k].stats.bits);
      EXPECT_DOUBLE_EQ(a.records[k].stats.psnr_db, b.records[k].stats.psnr_db);
    }
    EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << a.config.name;
  }
}

}  // namespace
}  // namespace dsra
