// Stage-split encode pipeline: bit-exact equivalence between the
// monolithic frame encode and the ME -> DCT/quant -> reconstruct stage
// decomposition, across synthetic sequences, quantiser scales and DCT
// array implementations.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "me/systolic.hpp"
#include "video/codec.hpp"
#include "video/synthetic.hpp"

namespace dsra::video {
namespace {

std::vector<Frame> sequence(int size, int frames, std::uint64_t seed) {
  SyntheticConfig cfg;
  cfg.width = size;
  cfg.height = size;
  cfg.frames = frames;
  cfg.seed = seed;
  return generate_sequence(cfg);
}

void expect_stats_identical(const FrameStats& a, const FrameStats& b, int frame) {
  EXPECT_DOUBLE_EQ(a.psnr_db, b.psnr_db) << "frame " << frame;
  EXPECT_DOUBLE_EQ(a.bits, b.bits) << "frame " << frame;
  EXPECT_EQ(a.dct_array_cycles, b.dct_array_cycles) << "frame " << frame;
  EXPECT_EQ(a.me_array_cycles, b.me_array_cycles) << "frame " << frame;
  EXPECT_EQ(a.blocks_coded, b.blocks_coded) << "frame " << frame;
  EXPECT_DOUBLE_EQ(a.mean_abs_mv, b.mean_abs_mv) << "frame " << frame;
}

/// Drive a sequence through the stages by hand (open-loop ME against the
/// previous original frame) and through the monolithic encode_frame
/// wrapper; both must agree bit for bit, per frame.
void expect_stage_split_matches_monolithic(const ToyEncoder& enc,
                                           const std::vector<Frame>& frames) {
  Frame mono_recon;
  Frame staged_recon;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const Frame* search_ref = k > 0 ? &frames[k - 1] : nullptr;
    const FrameStats mono = enc.encode_frame(frames[k], search_ref, mono_recon);

    const MotionStageResult motion = enc.run_motion_stage(frames[k], search_ref);
    const TransformStageResult transform = enc.run_transform_stage(
        frames[k], k > 0 ? &staged_recon : nullptr, motion);
    Frame out;
    const FrameStats staged = enc.run_reconstruct_stage(frames[k], motion, transform, out);
    staged_recon = std::move(out);

    expect_stats_identical(mono, staged, static_cast<int>(k));
    EXPECT_EQ(mono_recon.data(), staged_recon.data()) << "frame " << k;
  }
}

TEST(PipelineStages, BitExactAcrossQuantiserScales) {
  const auto frames = sequence(48, 4, 99);
  for (const double qs : {16.0, 8.0, 2.0}) {
    CodecConfig cfg;
    cfg.quantiser_scale = qs;
    cfg.me_range = 4;
    const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);
    SCOPED_TRACE(qs);
    expect_stage_split_matches_monolithic(enc, frames);
  }
}

TEST(PipelineStages, BitExactAcrossArrayImplementations) {
  const auto frames = sequence(32, 3, 123);
  CodecConfig cfg;
  cfg.me_range = 4;
  for (const auto& impl : dct::all_implementations(dct::DaPrecision::wide())) {
    const ToyEncoder enc(impl.get(), me::systolic_search_fn(), cfg);
    SCOPED_TRACE(impl->name());
    expect_stage_split_matches_monolithic(enc, frames);
  }
}

TEST(PipelineStages, ClosedLoopEncodeInterEqualsItsStages) {
  const auto frames = sequence(48, 2, 7);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);

  Frame intra_recon;
  enc.encode_intra(frames[0], intra_recon);

  Frame inter_recon;
  const FrameStats wrapped = enc.encode_inter(frames[1], intra_recon, inter_recon);

  const MotionStageResult motion = enc.run_motion_stage(frames[1], &intra_recon);
  const TransformStageResult transform =
      enc.run_transform_stage(frames[1], &intra_recon, motion);
  Frame staged_recon;
  const FrameStats staged =
      enc.run_reconstruct_stage(frames[1], motion, transform, staged_recon);

  expect_stats_identical(wrapped, staged, 1);
  EXPECT_EQ(inter_recon.data(), staged_recon.data());
}

TEST(PipelineStages, IntraStagesMatchEncodeIntra) {
  const auto frames = sequence(40, 1, 11);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);

  Frame wrapped_recon;
  const FrameStats wrapped = enc.encode_intra(frames[0], wrapped_recon);

  const MotionStageResult motion = enc.run_motion_stage(frames[0], nullptr);
  EXPECT_TRUE(motion.mvs.empty());
  EXPECT_EQ(motion.me_array_cycles, 0u);
  const TransformStageResult transform = enc.run_transform_stage(frames[0], nullptr, motion);
  EXPECT_EQ(transform.prediction.width(), 0);
  Frame staged_recon;
  const FrameStats staged =
      enc.run_reconstruct_stage(frames[0], motion, transform, staged_recon);

  expect_stats_identical(wrapped, staged, 0);
  EXPECT_EQ(wrapped_recon.data(), staged_recon.data());
}

TEST(PipelineStages, StageResultsHaveExpectedShape) {
  const auto frames = sequence(48, 2, 3);
  CodecConfig cfg;
  cfg.me_block = 16;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);

  const MotionStageResult motion = enc.run_motion_stage(frames[1], &frames[0]);
  EXPECT_EQ(motion.mvs.size(), 9u);  // 48/16 = 3 macroblocks per side
  EXPECT_EQ(motion.mv_count, 9);
  EXPECT_GT(motion.me_array_cycles, 0u);

  const TransformStageResult transform = enc.run_transform_stage(frames[1], &frames[0], motion);
  EXPECT_EQ(transform.levels.size(), 36u);  // 48/8 = 6 blocks per side
  EXPECT_EQ(transform.blocks_coded, 36);
  EXPECT_EQ(transform.prediction.width(), 48);
}

TEST(PipelineStages, StageContractViolationsThrow) {
  const auto frames = sequence(32, 2, 5);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);
  const MotionStageResult motion = enc.run_motion_stage(frames[1], &frames[0]);

  // Inter motion vectors handed to the intra transform path.
  EXPECT_THROW((void)enc.run_transform_stage(frames[1], nullptr, motion),
               std::invalid_argument);

  // Reconstruct stage fed fewer level blocks than the frame needs.
  TransformStageResult truncated = enc.run_transform_stage(frames[1], &frames[0], motion);
  truncated.levels.resize(truncated.levels.size() / 2);
  Frame recon;
  EXPECT_THROW((void)enc.run_reconstruct_stage(frames[1], motion, truncated, recon),
               std::invalid_argument);
}

/// Interleaving the stage calls of two independent streams must not
/// change either stream's output: the encoder is stateless and all
/// per-frame state travels in the stage results.
TEST(PipelineStages, InterleavedStreamsStayIsolated) {
  const auto a_frames = sequence(32, 3, 21);
  const auto b_frames = sequence(32, 3, 42);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);

  // Sequential reference.
  Frame a_ref_recon, b_ref_recon;
  std::vector<FrameStats> a_ref, b_ref;
  for (std::size_t k = 0; k < a_frames.size(); ++k)
    a_ref.push_back(
        enc.encode_frame(a_frames[k], k > 0 ? &a_frames[k - 1] : nullptr, a_ref_recon));
  for (std::size_t k = 0; k < b_frames.size(); ++k)
    b_ref.push_back(
        enc.encode_frame(b_frames[k], k > 0 ? &b_frames[k - 1] : nullptr, b_ref_recon));

  // Interleaved stage execution: B's ME runs between A's stages.
  Frame a_recon, b_recon;
  for (std::size_t k = 0; k < a_frames.size(); ++k) {
    const MotionStageResult a_me =
        enc.run_motion_stage(a_frames[k], k > 0 ? &a_frames[k - 1] : nullptr);
    const MotionStageResult b_me =
        enc.run_motion_stage(b_frames[k], k > 0 ? &b_frames[k - 1] : nullptr);
    const TransformStageResult a_tq =
        enc.run_transform_stage(a_frames[k], k > 0 ? &a_recon : nullptr, a_me);
    const TransformStageResult b_tq =
        enc.run_transform_stage(b_frames[k], k > 0 ? &b_recon : nullptr, b_me);
    Frame a_out, b_out;
    const FrameStats a_stats = enc.run_reconstruct_stage(a_frames[k], a_me, a_tq, a_out);
    const FrameStats b_stats = enc.run_reconstruct_stage(b_frames[k], b_me, b_tq, b_out);
    a_recon = std::move(a_out);
    b_recon = std::move(b_out);
    expect_stats_identical(a_stats, a_ref[k], static_cast<int>(k));
    expect_stats_identical(b_stats, b_ref[k], static_cast<int>(k));
  }
  EXPECT_EQ(a_recon.data(), a_ref_recon.data());
  EXPECT_EQ(b_recon.data(), b_ref_recon.data());
}

}  // namespace
}  // namespace dsra::video
