// Architecture builders, routing-resource graph invariants, simulated
// annealing placement and PathFinder routing properties.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/arch.hpp"
#include "mapper/place.hpp"
#include "mapper/route.hpp"
#include "mapper/rrgraph.hpp"

namespace dsra::map {
namespace {

/// Random netlist of adders in a chain with some fan-out, for stress tests.
Netlist random_netlist(int nodes, int width, std::uint64_t seed) {
  Rng rng(seed);
  Netlist nl("rand");
  std::vector<NetId> nets;
  nets.push_back(nl.add_input("in0", width));
  nets.push_back(nl.add_input("in1", width));
  for (int i = 0; i < nodes; ++i) {
    const NodeId n = nl.add_node("n" + std::to_string(i),
                                 AddShiftCfg{width, AddShiftOp::kAdd, 0, false});
    nl.connect_input(n, "a", nets[rng.next_below(nets.size())]);
    nl.connect_input(n, "b", nets[rng.next_below(nets.size())]);
    nets.push_back(nl.output_net(n, "y"));
  }
  nl.add_output("out", nets.back());
  return nl;
}

TEST(Arch, BuildersProduceExpectedComposition) {
  const ArrayArch me = ArrayArch::motion_estimation(4, 3);
  EXPECT_EQ(me.width(), 17);
  EXPECT_EQ(me.height(), 3);
  EXPECT_EQ(me.count_of(ClusterKind::kMuxReg), 2 * 4 * 3);
  EXPECT_EQ(me.count_of(ClusterKind::kAbsDiff), 4 * 3);
  EXPECT_EQ(me.count_of(ClusterKind::kAddAcc), 4 * 3);
  EXPECT_EQ(me.count_of(ClusterKind::kComp), 3);
  EXPECT_EQ(me.count_of(ClusterKind::kMem), 0);

  const ArrayArch da = ArrayArch::distributed_arithmetic(8, 4, 4);
  EXPECT_EQ(da.count_of(ClusterKind::kMem), 2 * 4);        // 2 mem columns
  EXPECT_EQ(da.count_of(ClusterKind::kAddShift), 6 * 4);
  EXPECT_EQ(da.tile_count(), 32);

  // Composition sums to the tile count.
  int total = 0;
  for (const auto& [kind, count] : da.composition()) total += count;
  EXPECT_EQ(total, da.tile_count());
}

TEST(Arch, SitesOfMatchesKindAt) {
  const ArrayArch da = ArrayArch::distributed_arithmetic(6, 5);
  for (const auto& site : da.sites_of(ClusterKind::kMem))
    EXPECT_EQ(da.kind_at(site), ClusterKind::kMem);
  EXPECT_EQ(static_cast<int>(da.sites_of(ClusterKind::kMem).size()),
            da.count_of(ClusterKind::kMem));
}

TEST(RRGraph, AdjacencyIsSymmetricAndLayered) {
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 5, 4);
  const RRGraph g(arch);
  for (RRNodeId n = 0; n < g.node_count(); ++n) {
    for (const RRNodeId m : g.neighbors(n)) {
      EXPECT_EQ(g.layer_of(n), g.layer_of(m)) << "no inter-layer switches";
      const auto& back = g.neighbors(m);
      EXPECT_NE(std::find(back.begin(), back.end(), n), back.end()) << "symmetric";
    }
  }
}

TEST(RRGraph, TileAccessNodesBorderTheTile) {
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 4, 4);
  const RRGraph g(arch);
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const auto access = g.tile_access({x, y}, Layer::kBus);
      EXPECT_EQ(access.size(), 4u);
      for (const RRNodeId n : access) {
        const auto [px, py] = g.position(n);
        EXPECT_LE(std::abs(px - (x + 0.5)) + std::abs(py - (y + 0.5)), 1.01);
      }
    }
  }
}

TEST(RRGraph, DemandUnitsFollowBusWidth) {
  EXPECT_EQ(RRGraph::demand_units(1), 1);
  EXPECT_EQ(RRGraph::demand_units(8), 1);
  EXPECT_EQ(RRGraph::demand_units(9), 2);
  EXPECT_EQ(RRGraph::demand_units(16), 2);
  EXPECT_EQ(RRGraph::demand_units(32), 4);
  EXPECT_EQ(RRGraph::layer_for_width(1), Layer::kBit);
  EXPECT_EQ(RRGraph::layer_for_width(8), Layer::kBus);
}

TEST(Place, LegalKindMatchingAndDeterminism) {
  const Netlist nl = random_netlist(24, 16, 5);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 8, 8);
  PlaceParams params;
  params.seed = 9;
  const PlaceResult r1 = place(nl, arch, params);
  const PlaceResult r2 = place(nl, arch, params);
  for (std::size_t i = 0; i < r1.placement.node_tile.size(); ++i)
    EXPECT_EQ(r1.placement.node_tile[i], r2.placement.node_tile[i]) << "determinism";

  // Legality: every node on a site of its kind, no two nodes share a tile.
  std::set<std::pair<int, int>> used;
  for (std::size_t i = 0; i < nl.nodes().size(); ++i) {
    const TileCoord t = r1.placement.node_tile[i];
    EXPECT_EQ(arch.kind_at(t), kind_of(nl.nodes()[i].config));
    EXPECT_TRUE(used.insert({t.x, t.y}).second) << "overlap at " << t.x << "," << t.y;
  }
}

TEST(Place, AnnealingImprovesWirelength) {
  const Netlist nl = random_netlist(60, 16, 6);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 10, 10);
  const PlaceResult r = place(nl, arch, PlaceParams{});
  EXPECT_LE(r.final_wirelength, r.initial_wirelength);
  EXPECT_GT(r.moves_accepted, 0);
  EXPECT_DOUBLE_EQ(r.final_wirelength, wirelength(nl, r.placement));
}

TEST(Place, ThrowsWhenFabricTooSmall) {
  const Netlist nl = random_netlist(30, 16, 7);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 5, 5);
  EXPECT_THROW((void)place(nl, arch, PlaceParams{}), std::runtime_error);
}

class RouteChannels : public ::testing::TestWithParam<int> {};

TEST_P(RouteChannels, NoOveruseOnSuccess) {
  const int bus_tracks = GetParam();
  const Netlist nl = random_netlist(30, 16, 8);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 8, 8,
                                                ChannelSpec{bus_tracks, 4});
  const PlaceResult placed = place(nl, arch, PlaceParams{});
  const RRGraph graph(arch);
  const RouteResult routes = route(nl, placed.placement, graph, RouteParams{});
  if (!routes.success) GTEST_SKIP() << "unroutable at " << bus_tracks << " bus tracks";

  // Re-derive usage from the route trees and check every channel.
  std::vector<int> usage(static_cast<std::size_t>(graph.node_count()), 0);
  for (const auto& rn : routes.nets)
    for (const RRNodeId n : rn.tree) usage[static_cast<std::size_t>(n)] += rn.demand;
  for (RRNodeId n = 0; n < graph.node_count(); ++n)
    EXPECT_LE(usage[static_cast<std::size_t>(n)], graph.capacity(n));
  EXPECT_EQ(routes.overused_nodes, 0);
}

INSTANTIATE_TEST_SUITE_P(BusTracks, RouteChannels, ::testing::Values(2, 4, 8));

TEST(Route, EveryNetTreeTouchesAllItsTerminals) {
  const Netlist nl = random_netlist(20, 16, 10);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 8, 8);
  const PlaceResult placed = place(nl, arch, PlaceParams{});
  const RRGraph graph(arch);
  const RouteResult routes = route(nl, placed.placement, graph, RouteParams{});
  ASSERT_TRUE(routes.success);

  for (std::size_t i = 0; i < nl.nets().size(); ++i) {
    const Net& net = nl.nets()[i];
    if (net.sinks.empty()) continue;
    const auto& rn = routes.nets[i];
    EXPECT_FALSE(rn.tree.empty()) << net.name;
    EXPECT_EQ(rn.sink_hops.size(), net.sinks.size());
    std::set<RRNodeId> tree(rn.tree.begin(), rn.tree.end());
    const Layer layer = RRGraph::layer_for_width(net.width);
    // Driver and every sink must have at least one access node in the tree.
    auto touches = [&](const PinRef& pin, bool is_driver) {
      TileCoord t{};
      if (pin.node != kInvalidId) {
        t = placed.placement.tile_of(pin.node);
      } else {
        t = is_driver ? placed.placement.input_pad[static_cast<std::size_t>(pin.port)].tile
                      : placed.placement.output_pad[static_cast<std::size_t>(pin.port)].tile;
      }
      for (const RRNodeId n : graph.tile_access(t, layer))
        if (tree.count(n)) return true;
      return false;
    };
    EXPECT_TRUE(touches(net.driver, true)) << net.name;
    for (const auto& s : net.sinks) EXPECT_TRUE(touches(s, false)) << net.name;
  }
}

TEST(Route, WiderChannelsReduceIterations) {
  const Netlist nl = random_netlist(40, 16, 11);
  const ArrayArch narrow = ArrayArch::homogeneous(ClusterKind::kAddShift, 7, 7, ChannelSpec{3, 4});
  const ArrayArch wide = ArrayArch::homogeneous(ClusterKind::kAddShift, 7, 7, ChannelSpec{10, 8});
  const PlaceParams pp;
  const PlaceResult p1 = place(nl, narrow, pp);
  const PlaceResult p2 = place(nl, wide, pp);
  const RouteResult r1 = route(nl, p1.placement, RRGraph(narrow), RouteParams{});
  const RouteResult r2 = route(nl, p2.placement, RRGraph(wide), RouteParams{});
  ASSERT_TRUE(r2.success);
  if (r1.success) EXPECT_LE(r2.iterations, r1.iterations);
}

}  // namespace
}  // namespace dsra::map
