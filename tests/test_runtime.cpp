// Multi-stream encode runtime: bounded bitstream context cache,
// config-affinity batching vs naive round-robin, scheduler fairness
// (ageing valve) under concurrent fabrics, and a randomized stress test
// over the stage pipeline.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "runtime/scheduler.hpp"

namespace dsra::runtime {
namespace {

// The compiled library (six place-and-route runs) is expensive; share one
// instance across the scheduler tests.
const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

std::vector<StreamJob> mixed_workload(int streams, int frames, int size) {
  // Adjacent streams always demand different bitstreams, the worst case
  // for a scheduler that ignores configuration affinity.
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // -> cordic1
      {0.5, 0.9},  // -> cordic2
      {0.9, 0.3},  // -> mixed_rom
      {0.1, 0.9},  // -> scc_full
  };
  std::vector<StreamJob> jobs;
  jobs.reserve(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = size;
    cfg.height = size;
    cfg.frame_budget = frames;
    cfg.condition = conditions[k % 4];
    cfg.codec.me_range = 4;
    cfg.seed = 100 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

TEST(ContextCache, EvictsLeastRecentlyUsedUnderTightCapacity) {
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 16});
  soc::Bus bus;
  const std::map<std::string, std::vector<std::uint8_t>> backing{
      {"a", std::vector<std::uint8_t>(100, 1)},
      {"b", std::vector<std::uint8_t>(100, 2)},
      {"c", std::vector<std::uint8_t>(100, 3)},
  };
  ContextCache cache(
      mgr, bus,
      [&](const std::string& n) -> const std::vector<std::uint8_t>& { return backing.at(n); },
      ContextCacheConfig{250});

  EXPECT_GT(cache.touch("a"), 0u);  // miss pays bus fetch cycles
  EXPECT_GT(cache.touch("b"), 0u);
  EXPECT_EQ(cache.touch("a"), 0u);  // hit refreshes recency
  EXPECT_GT(cache.touch("c"), 0u);  // evicts b, the least recently used
  EXPECT_FALSE(cache.resident("b"));
  EXPECT_TRUE(cache.resident("a"));
  EXPECT_TRUE(cache.resident("c"));
  EXPECT_LE(mgr.stored_bytes(), 250u);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  EXPECT_GT(cache.touch("b"), 0u);  // evicted context must be refetched
  EXPECT_EQ(cache.stats().misses, 4u);
  EXPECT_EQ(cache.stats().evictions, 2u);  // a (LRU after the c load) went
  EXPECT_LE(mgr.stored_bytes(), 250u);
  EXPECT_EQ(cache.stats().bytes_fetched, 400u);
  EXPECT_EQ(cache.lru_order(), (std::vector<std::string>{"c", "b"}));
}

TEST(ContextCache, OversizedStreamStillLoads) {
  soc::ReconfigManager mgr;
  soc::Bus bus;
  const std::vector<std::uint8_t> big(1000, 7);
  ContextCache cache(
      mgr, bus,
      [&](const std::string&) -> const std::vector<std::uint8_t>& { return big; },
      ContextCacheConfig{100});
  EXPECT_GT(cache.touch("big"), 0u);
  EXPECT_TRUE(cache.resident("big"));  // the working context must exist
}

TEST(ContextCache, ActiveContextIsPinnedDuringEviction) {
  // Regression: the LRU eviction loop used to evict whatever sat at the
  // front — including the bitstream *active* on the fabric — leaving the
  // hardware running a context the manager no longer stored.
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 16});
  soc::Bus bus;
  const std::map<std::string, std::vector<std::uint8_t>> backing{
      {"a", std::vector<std::uint8_t>(100, 1)},
      {"b", std::vector<std::uint8_t>(100, 2)},
      {"c", std::vector<std::uint8_t>(100, 3)},
  };
  ContextCache cache(
      mgr, bus,
      [&](const std::string& n) -> const std::vector<std::uint8_t>& { return backing.at(n); },
      ContextCacheConfig{250});

  (void)cache.touch("a");
  EXPECT_GT(mgr.activate("a"), 0u);
  (void)cache.touch("b");
  (void)cache.touch("c");  // must evict b — a is the LRU front but active

  EXPECT_TRUE(cache.resident("a")) << "the active context was evicted";
  EXPECT_FALSE(cache.resident("b"));
  EXPECT_TRUE(cache.resident("c"));
  EXPECT_EQ(mgr.activate("a"), 0u) << "still active and still backed by the store";
  EXPECT_LE(mgr.stored_bytes(), 250u);
}

TEST(ContextCache, OversizeFetchBypassesInsteadOfEmptyingTheCache) {
  // Regression: a bitstream larger than the whole capacity used to drain
  // the eviction loop (emptying the cache) and was then stored anyway,
  // silently exceeding the configured bound.
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 16});
  soc::Bus bus;
  const std::map<std::string, std::vector<std::uint8_t>> backing{
      {"a", std::vector<std::uint8_t>(100, 1)},
      {"b", std::vector<std::uint8_t>(100, 2)},
      {"big", std::vector<std::uint8_t>(1000, 7)},
      {"c", std::vector<std::uint8_t>(100, 3)},
  };
  ContextCache cache(
      mgr, bus,
      [&](const std::string& n) -> const std::vector<std::uint8_t>& { return backing.at(n); },
      ContextCacheConfig{250});

  (void)cache.touch("a");
  (void)cache.touch("b");
  EXPECT_GT(cache.touch("big"), 0u);  // the fetch is charged to the bus
  EXPECT_TRUE(cache.resident("big")); // the working context must exist...
  EXPECT_TRUE(cache.resident("a"));   // ...but the cached contexts survive
  EXPECT_TRUE(cache.resident("b"));
  EXPECT_EQ(cache.stats().oversize_fetches, 1u);  // the breach is explicit
  EXPECT_EQ(cache.stats().bytes_bypassed, 1000u);
  EXPECT_EQ(cache.lru_order(), (std::vector<std::string>{"a", "b"}));
  // Conservation across the bypass path: the oversize insert is in the
  // ledger even though it sits outside the LRU bound.
  EXPECT_EQ(cache.bypass_bytes(), 1000u);
  EXPECT_TRUE(cache.byte_balance_ok());

  // Once the fabric runs something else, the bypassed context is the
  // first thing dropped; an *active* oversize context stays pinned.
  EXPECT_GT(mgr.activate("big"), 0u);
  cache.trim();
  EXPECT_TRUE(cache.resident("big"));
  EXPECT_GT(mgr.activate("a"), 0u);
  (void)cache.touch("c");
  EXPECT_FALSE(cache.resident("big"));
  EXPECT_LE(mgr.stored_bytes(), 250u);
  // The dropped bypass context lands in bytes_evicted; balance still holds.
  EXPECT_EQ(cache.bypass_bytes(), 0u);
  EXPECT_TRUE(cache.byte_balance_ok());
}

TEST(Library, CompilesAllSixImplementations) {
  EXPECT_EQ(library().names().size(), 6u);
  EXPECT_NE(library().impl("cordic1"), nullptr);
  EXPECT_EQ(library().impl("nope"), nullptr);
  EXPECT_THROW((void)library().bitstream("nope"), std::invalid_argument);
  EXPECT_GT(library().total_bytes(), 0u);
}

TEST(Fabric, PrepareChargesFetchPlusSwitchOnceThenNothing) {
  FabricConfig cfg;
  Fabric fabric(0, library(), cfg);
  const std::uint64_t first = fabric.prepare("cordic1");
  EXPECT_GT(first, 0u);
  EXPECT_EQ(fabric.prepare("cordic1"), 0u);  // resident and active
  ASSERT_NE(fabric.active_impl(), nullptr);
  EXPECT_EQ(fabric.active_impl()->name(), "cordic1");
  EXPECT_GT(fabric.prepare("scc_full"), 0u);
  EXPECT_EQ(fabric.cache().stats().misses, 2u);
  EXPECT_EQ(fabric.cache().stats().hits, 1u);  // second cordic1 prepare
}

TEST(Scheduler, AffinityBatchingBeatsRoundRobin) {
  SchedulerConfig cfg;
  cfg.fabrics = 1;  // single worker -> deterministic dispatch order

  cfg.queue.policy = SchedulingPolicy::kRoundRobin;
  auto rr_jobs = mixed_workload(6, 4, 32);
  const RunReport rr = MultiStreamScheduler(library(), cfg).run(rr_jobs);

  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  auto af_jobs = mixed_workload(6, 4, 32);
  const RunReport af = MultiStreamScheduler(library(), cfg).run(af_jobs);

  EXPECT_EQ(rr.total_frames, 24u);
  EXPECT_EQ(af.total_frames, 24u);

  // Affinity batching amortizes the configuration port: strictly fewer
  // switches and strictly fewer reconfiguration cycles.
  EXPECT_LT(af.total_switches, rr.total_switches);
  EXPECT_LT(af.total_reconfig_cycles, rr.total_reconfig_cycles);
  // Four distinct bitstreams, batched exhaustively -> four loads.
  EXPECT_LE(af.total_switches, 4 + 1);

  // Scheduling must not change what gets encoded: per-stream output is
  // identical under both policies.
  ASSERT_EQ(rr.streams.size(), af.streams.size());
  for (std::size_t k = 0; k < rr.streams.size(); ++k) {
    EXPECT_DOUBLE_EQ(rr.streams[k].total_bits, af.streams[k].total_bits) << k;
    EXPECT_DOUBLE_EQ(rr.streams[k].mean_psnr_db, af.streams[k].mean_psnr_db) << k;
  }
}

TEST(Scheduler, RunCapRotatesAwayFromDominantConfiguration) {
  // Three cordic1 streams vs one scc_full stream: without forced rotation
  // the majority group would monopolize the fabric until the ageing valve
  // (here far away) fires. The run cap alone must bound the minority
  // stream's wait.
  std::vector<StreamJob> jobs;
  for (int k = 0; k < 4; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = 32;
    cfg.height = 32;
    cfg.frame_budget = 2;
    cfg.condition = k < 3 ? soc::RuntimeCondition{1.0, 1.0}   // cordic1
                          : soc::RuntimeCondition{0.1, 0.9};  // scc_full
    cfg.codec.me_range = 4;
    cfg.seed = 500 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 2;
  cfg.queue.aging_threshold = 50;  // never reached: 8 dispatches total
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 8u);
  // The scc_full stream gets served after at most one full run of the cap.
  EXPECT_LE(report.streams[3].max_wait_dispatches,
            static_cast<std::uint64_t>(cfg.queue.max_affinity_run + 1));
}

TEST(Scheduler, NoStreamStarvesUnderAgeing) {
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 1000;  // batching alone would starve the rest
  cfg.queue.aging_threshold = 6;
  auto jobs = mixed_workload(8, 5, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 40u);
  for (const StreamSummary& s : report.streams) {
    EXPECT_EQ(s.frames, 5) << s.name;
    EXPECT_GT(s.latency.p95_ms, 0.0) << s.name;
  }
  // The ageing valve bounds every stream's queue wait: at most the
  // threshold plus one backlog round of the other streams.
  EXPECT_LE(report.max_wait_dispatches,
            cfg.queue.aging_threshold + static_cast<std::uint64_t>(jobs.size() + 2));
}

TEST(Scheduler, BoundedContextCacheEvictsAndStillCompletes) {
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 2;  // force frequent switching
  // Room for roughly one and a half contexts -> every switch evicts.
  cfg.fabric.context_capacity_bytes = library().bitstream("scc_full").size() * 3 / 2;

  auto jobs = mixed_workload(4, 3, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);
  EXPECT_EQ(report.total_frames, 12u);
  EXPECT_GT(report.cache.evictions, 0u);
  EXPECT_GT(report.cache.misses, report.cache.hits);
  EXPECT_GT(report.total_fetch_cycles, 0u);
}

TEST(Scheduler, RejectsUnknownImplementation) {
  auto jobs = mixed_workload(1, 1, 32);
  jobs[0].impl_name = "not_an_impl";
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  MultiStreamScheduler scheduler(library(), cfg);
  EXPECT_THROW((void)scheduler.run(jobs), std::invalid_argument);
}

TEST(Scheduler, StarvingLowAffinityStreamIsServedMidBatch) {
  // Six streams share the dominant bitstream and one stream wants another;
  // the run cap is effectively infinite, so the dominant batch never ends
  // on its own. Only a mid-batch ageing valve can serve the minority
  // stream — if ageing applied at batch boundaries alone, it would starve
  // until the whole dominant group drained.
  std::vector<StreamJob> jobs;
  for (int k = 0; k < 7; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = 32;
    cfg.height = 32;
    cfg.frame_budget = 6;
    cfg.condition = k < 6 ? soc::RuntimeCondition{1.0, 1.0}   // cordic1
                          : soc::RuntimeCondition{0.1, 0.9};  // scc_full
    cfg.codec.me_range = 4;
    cfg.seed = 900 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 1000000;  // the batch never ends by itself
  cfg.queue.aging_threshold = 4;
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 42u);
  EXPECT_EQ(report.streams[6].frames, 6);
  // Every service of the minority stream came from the valve firing
  // mid-batch, so its wait is bounded by the threshold plus the backlog
  // of streams that aged simultaneously — not by the (unbounded) batch.
  EXPECT_LE(report.streams[6].max_wait_dispatches,
            cfg.queue.aging_threshold + static_cast<std::uint64_t>(jobs.size()));
  // And it was genuinely interleaved: it finished before the dominant
  // group's last frame, not after the batch drained.
  std::uint64_t minority_last_end = 0, dominant_last_end = 0;
  for (const StageEvent& e : report.timeline) {
    if (e.start) continue;
    if (e.stream_id == 6)
      minority_last_end = std::max(minority_last_end, e.tick);
    else
      dominant_last_end = std::max(dominant_last_end, e.tick);
  }
  EXPECT_LT(minority_last_end, dominant_last_end);
}

TEST(Scheduler, RandomizedPipelineStressKeepsEveryFrameExactlyOnce) {
  // Hundreds of stage jobs over a mixed heterogeneous pool with a tight
  // context cache: no frame may be lost or duplicated, per-stream frame
  // order stays monotone, and the cache's byte accounting must balance
  // with its evictions.
  Rng rng(20260728);
  std::vector<StreamJob> jobs;
  const int sizes[] = {16, 24, 32};
  int total_frames = 0;
  for (int k = 0; k < 24; ++k) {
    StreamConfig cfg;
    cfg.name = "stress" + std::to_string(k);
    cfg.width = sizes[rng.next_below(3)];
    cfg.height = sizes[rng.next_below(3)];
    cfg.frame_budget = 2 + static_cast<int>(rng.next_below(6));
    cfg.condition = {rng.next_double(), rng.next_double()};
    cfg.codec.me_range = 2 + static_cast<int>(rng.next_below(3));
    cfg.codec.quantiser_scale = 4.0 + rng.next_double() * 12.0;
    cfg.seed = rng.next_u64();
    jobs.push_back(make_synthetic_job(k, cfg));
    total_frames += cfg.frame_budget;
  }

  SchedulerConfig cfg;
  FabricConfig me_only, dct_only, both;
  me_only.capabilities = kCapMotionEstimation;
  dct_only.capabilities = kCapDctTransform;
  const std::size_t capacity = library().total_bytes() / 3;
  dct_only.context_capacity_bytes = capacity;
  both.context_capacity_bytes = capacity;
  cfg.fabric_configs = {me_only, dct_only, both};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  cfg.queue.max_affinity_run = 4;
  cfg.queue.aging_threshold = 12;
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, static_cast<std::uint64_t>(total_frames));
  // Every frame dispatches a DCT/quant and a reconstruct job; every frame
  // but each stream's intra frame also dispatches an ME job.
  EXPECT_EQ(report.dispatches,
            static_cast<std::uint64_t>(3 * total_frames - static_cast<int>(jobs.size())));
  for (const StreamJob& s : jobs) {
    ASSERT_EQ(s.records.size(), s.frames.size()) << s.config.name;
    for (std::size_t k = 0; k < s.records.size(); ++k)
      EXPECT_EQ(s.records[k].frame_index, static_cast<int>(k))
          << s.config.name << ": lost, duplicated or reordered frame";
    EXPECT_EQ(s.recon_state.width(), s.config.width) << s.config.name;
    EXPECT_TRUE(s.finished()) << s.config.name;
  }
  // Byte accounting balances: whatever was fetched and not evicted is
  // still resident, which can never exceed the bounded capacities.
  EXPECT_GT(report.cache.evictions, 0u);
  EXPECT_GE(report.cache.bytes_fetched, report.cache.bytes_evicted);
  EXPECT_LE(report.cache.bytes_fetched - report.cache.bytes_evicted,
            2 * capacity + library().total_bytes());  // two bounded + one unbounded fabric
}

TEST(Fabric, CacheByteAccountingBalancesExactly) {
  FabricConfig cfg;
  cfg.context_capacity_bytes = library().total_bytes() / 2;
  Fabric fabric(0, library(), cfg);
  const char* walk[] = {"cordic1", "scc_full", "mixed_rom", "cordic2",
                        "cordic1", "da_basic", "scc_full",  "me_systolic"};
  for (const char* name : walk) (void)fabric.prepare(name);
  const ContextCacheStats& stats = fabric.cache().stats();
  EXPECT_GT(stats.evictions, 0u);
  // fetched - evicted == resident, byte for byte.
  EXPECT_EQ(stats.bytes_fetched - stats.bytes_evicted,
            static_cast<std::uint64_t>(fabric.reconfig().stored_bytes()));
  // Conservation ledger: every inserted byte is resident or was evicted.
  EXPECT_TRUE(fabric.cache().byte_balance_ok());
  EXPECT_EQ(stats.bytes_inserted,
            stats.bytes_evicted + fabric.cache().resident_bytes() +
                fabric.cache().bypass_bytes());
  EXPECT_LE(fabric.reconfig().stored_bytes(), cfg.context_capacity_bytes);
  // The ME context is charged against the ME kernel, DCT contexts against
  // the DCT kernel.
  EXPECT_GT(fabric.reconfig().reconfig_cycles_for_kernel("me"), 0u);
  EXPECT_GT(fabric.reconfig().reconfig_cycles_for_kernel("dct"), 0u);
  EXPECT_EQ(fabric.reconfig().reconfig_cycles_for_kernel("me") +
                fabric.reconfig().reconfig_cycles_for_kernel("dct"),
            fabric.reconfig().total_reconfig_cycles());
}

TEST(Stats, PercentilesUseNearestRank) {
  const std::vector<double> samples{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 50.0), 3.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 95.0), 5.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile({}, 50.0), 0.0);
  const LatencySummary s = summarize_latencies(samples);
  EXPECT_DOUBLE_EQ(s.p50_ms, 3.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 5.0);
  EXPECT_DOUBLE_EQ(s.mean_ms, 3.0);
}

TEST(Stats, PercentileEdgeCases) {
  // Empty sample sets answer 0 for every pct, including the extremes.
  EXPECT_DOUBLE_EQ(percentile({}, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(percentile({}, 100.0), 0.0);

  // A single sample is every percentile.
  const std::vector<double> one{7.5};
  EXPECT_DOUBLE_EQ(percentile(one, 0.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 50.0), 7.5);
  EXPECT_DOUBLE_EQ(percentile(one, 100.0), 7.5);

  // pct 0 and 100 hit the min and max exactly; out-of-range pcts clamp.
  const std::vector<double> samples{9.0, 2.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(samples, 0.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 100.0), 9.0);
  EXPECT_DOUBLE_EQ(percentile(samples, -10.0), 2.0);
  EXPECT_DOUBLE_EQ(percentile(samples, 250.0), 9.0);

  // summarize_latencies mirrors the same edges.
  const LatencySummary empty = summarize_latencies({});
  EXPECT_DOUBLE_EQ(empty.p50_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.p95_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.mean_ms, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_ms, 0.0);
  const LatencySummary single = summarize_latencies(one);
  EXPECT_DOUBLE_EQ(single.p50_ms, 7.5);
  EXPECT_DOUBLE_EQ(single.p95_ms, 7.5);
  EXPECT_DOUBLE_EQ(single.mean_ms, 7.5);
  EXPECT_DOUBLE_EQ(single.max_ms, 7.5);
}

TEST(Scheduler, HardAgeBoundServesMidCohortMinorityAtHighQueueDepth) {
  // Regression: every stream enqueued at construction shares ready_seq 0,
  // so the ageing valve's oldest-first selection degenerated into an
  // index-order sweep of that cohort — a minority-context stream parked
  // mid-cohort waited Theta(queue depth) dispatches (~201 here) while the
  // valve kept "serving the oldest" matching-context jobs in front of it.
  // The hard age bound must cut that to O(bound), independent of depth.
  constexpr int kStreams = 201;
  constexpr int kMinority = 100;  // mid-cohort: the sweep reaches it last
  std::vector<StreamJob> jobs;
  for (int k = 0; k < kStreams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = 16;
    cfg.height = 16;
    cfg.frame_budget = 1;  // one intra frame: the whole queue is one cohort
    cfg.condition = k == kMinority ? soc::RuntimeCondition{0.1, 0.9}   // scc_full
                                   : soc::RuntimeCondition{1.0, 1.0};  // cordic1
    cfg.seed = 3000 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 1000000;  // batching never rotates by itself
  cfg.queue.aging_threshold = 8;         // hard bound derives 2x = 16
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, static_cast<std::uint64_t>(kStreams));
  // Past the hard bound the mismatched-context job jumps the cohort sweep:
  // its wait is bounded by the bound plus a small service margin, not by
  // the ~200-deep queue in front of it.
  EXPECT_LE(report.streams[kMinority].max_wait_dispatches,
            2 * cfg.queue.aging_threshold + 16u);
}

TEST(ContextCache, ReleaseUnpinsShedStreamContextAndKeepsLedgerBalanced) {
  // Shed-mid-stream regression: a cancelled stream's context is pinned
  // twice — the active-context pin (the fabric was running its job) and
  // the resident-image pin — and no eviction path may clear either. Until
  // release() existed, those bytes stayed resident forever and the shed
  // path leaked them against the capacity bound.
  soc::ReconfigManager mgr(soc::ReconfigPortConfig{32, 16});
  soc::Bus bus;
  const std::map<std::string, std::vector<std::uint8_t>> backing{
      {"a", std::vector<std::uint8_t>(100, 1)},
      {"b", std::vector<std::uint8_t>(100, 2)},
  };
  ContextCache cache(
      mgr, bus,
      [&](const std::string& n) -> const std::vector<std::uint8_t>& { return backing.at(n); },
      ContextCacheConfig{150});

  (void)cache.touch("a");
  EXPECT_GT(mgr.activate("a"), 0u);  // the shed stream's job was running it
  (void)cache.touch("b");
  // Capacity pressure cannot dislodge the active context — the pin holds.
  EXPECT_TRUE(cache.resident("a"));
  EXPECT_TRUE(cache.byte_balance_ok());

  // The shed path must release it outright: bytes leave the ledger
  // instead of staying resident under a pin nobody will ever clear.
  EXPECT_TRUE(cache.release("a"));
  EXPECT_FALSE(cache.resident("a"));
  EXPECT_EQ(cache.frame_image("a"), nullptr);
  EXPECT_TRUE(cache.byte_balance_ok());
  EXPECT_EQ(cache.lru_order(), (std::vector<std::string>{"b"}));

  // Releasing a context the cache never stored is a no-op, and the
  // ledger still balances.
  EXPECT_FALSE(cache.release("a"));
  EXPECT_FALSE(cache.release("never_loaded"));
  EXPECT_TRUE(cache.byte_balance_ok());
}

TEST(Fabric, ReleaseContextDropsShedStreamFromCacheAndStore) {
  FabricConfig cfg;
  Fabric fabric(0, library(), cfg);
  (void)fabric.prepare("cordic1");  // resident, active, image retained
  EXPECT_TRUE(fabric.cache().resident("cordic1"));
  EXPECT_TRUE(fabric.release_context("cordic1"));
  EXPECT_FALSE(fabric.cache().resident("cordic1"));
  EXPECT_TRUE(fabric.cache().byte_balance_ok());
  EXPECT_FALSE(fabric.release_context("scc_full"));  // never loaded: no-op
}

TEST(Stats, PercentileRankGuardsDegenerateInputs) {
  // The shared rank-selection rule behind both sample percentiles and the
  // telemetry histogram percentiles: 1-based, clamped into [1, n], 0 only
  // when there are no samples.
  EXPECT_EQ(percentile_rank(0, 50.0), 0u);
  EXPECT_EQ(percentile_rank(1, 0.0), 1u);    // single-frame stream: rank 1 always
  EXPECT_EQ(percentile_rank(1, 100.0), 1u);
  EXPECT_EQ(percentile_rank(5, 50.0), 3u);
  EXPECT_EQ(percentile_rank(5, 95.0), 5u);
  EXPECT_EQ(percentile_rank(5, -10.0), 1u);  // out-of-range pct clamps
  EXPECT_EQ(percentile_rank(5, 250.0), 5u);

  // A non-finite pct must not reach the float->int cast (UB); it
  // collapses to the conservative end instead.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(percentile_rank(5, nan), 5u);
  const std::vector<double> samples{2.0, 9.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(samples, nan), 9.0);
  EXPECT_DOUBLE_EQ(percentile({}, nan), 0.0);
  EXPECT_DOUBLE_EQ(percentile({7.5}, nan), 7.5);
}

}  // namespace
}  // namespace dsra::runtime
