// Stage-pipeline scheduling: dependency ordering on the dispatch
// timeline, kernel-capability routing on heterogeneous pools, observed
// cross-stream overlap, and bit-exact equivalence with the monolithic
// frame-job mode.
#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/sim_schedule.hpp"

namespace dsra::runtime {
namespace {

// The compiled library (six DCT place-and-route runs plus the ME context)
// is expensive; share one instance across the tests.
const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

std::vector<StreamJob> mixed_workload(int streams, int frames, int size) {
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // -> cordic1
      {0.5, 0.9},  // -> cordic2
      {0.9, 0.3},  // -> mixed_rom
      {0.1, 0.9},  // -> scc_full
  };
  std::vector<StreamJob> jobs;
  jobs.reserve(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = size;
    cfg.height = size;
    cfg.frame_budget = frames;
    cfg.condition = conditions[k % 4];
    cfg.codec.me_range = 4;
    cfg.seed = 300 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

FabricConfig fabric_with(unsigned capabilities) {
  FabricConfig cfg;
  cfg.capabilities = capabilities;
  return cfg;
}

/// (start, end) dispatch ticks per (stream, frame, stage).
using IntervalMap = std::map<std::tuple<int, int, StageKind>, std::pair<std::uint64_t, std::uint64_t>>;

IntervalMap intervals_of(const std::vector<StageEvent>& timeline) {
  IntervalMap out;
  for (const StageEvent& e : timeline) {
    auto& slot = out[{e.stream_id, e.frame_index, e.stage}];
    (e.start ? slot.first : slot.second) = e.tick;
  }
  return out;
}

TEST(SchedulerPipeline, BitExactWithMonolithicMode) {
  SchedulerConfig cfg;
  cfg.fabrics = 2;

  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  auto mono_jobs = mixed_workload(4, 4, 32);
  const RunReport mono = MultiStreamScheduler(library(), cfg).run(mono_jobs);

  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto pipe_jobs = mixed_workload(4, 4, 32);
  const RunReport pipe = MultiStreamScheduler(library(), cfg).run(pipe_jobs);

  EXPECT_EQ(mono.total_frames, 16u);
  EXPECT_EQ(pipe.total_frames, 16u);
  ASSERT_EQ(mono_jobs.size(), pipe_jobs.size());
  for (std::size_t s = 0; s < mono_jobs.size(); ++s) {
    const StreamJob& a = mono_jobs[s];
    const StreamJob& b = pipe_jobs[s];
    ASSERT_EQ(a.records.size(), b.records.size()) << s;
    for (std::size_t k = 0; k < a.records.size(); ++k) {
      const video::FrameStats& sa = a.records[k].stats;
      const video::FrameStats& sb = b.records[k].stats;
      EXPECT_EQ(a.records[k].frame_index, b.records[k].frame_index) << s << "/" << k;
      EXPECT_DOUBLE_EQ(sa.bits, sb.bits) << s << "/" << k;
      EXPECT_DOUBLE_EQ(sa.psnr_db, sb.psnr_db) << s << "/" << k;
      EXPECT_DOUBLE_EQ(sa.mean_abs_mv, sb.mean_abs_mv) << s << "/" << k;
      EXPECT_EQ(sa.blocks_coded, sb.blocks_coded) << s << "/" << k;
      EXPECT_EQ(sa.dct_array_cycles, sb.dct_array_cycles) << s << "/" << k;
      EXPECT_EQ(sa.me_array_cycles, sb.me_array_cycles) << s << "/" << k;
    }
    // The reconstructions the two modes leave behind are identical.
    EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << s;
  }
}

TEST(SchedulerPipeline, StageOrderRespectsDependencies) {
  // One worker makes the dispatch order deterministic; the dependency
  // assertions themselves hold for any worker count.
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto jobs = mixed_workload(3, 5, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 15u);
  const IntervalMap iv = intervals_of(report.timeline);
  for (const StreamJob& s : jobs) {
    const int frames = static_cast<int>(s.frames.size());
    for (int k = 0; k < frames; ++k) {
      const auto tq = iv.at({s.id, k, StageKind::kTransformQuant});
      const auto rec = iv.at({s.id, k, StageKind::kReconstructEntropy});
      EXPECT_LT(tq.second, rec.first) << "frame " << k << ": reconstruct before DCT done";
      if (k > 0) {
        const auto me = iv.at({s.id, k, StageKind::kMotionEstimation});
        // A stream's frame k DCT must never start before its frame k ME
        // completed.
        EXPECT_LT(me.second, tq.first) << "frame " << k << ": DCT before ME done";
        // The DCT lane is serial: frame k's DCT waits for frame k-1's
        // reconstruction (it predicts from it).
        const auto prev_rec = iv.at({s.id, k - 1, StageKind::kReconstructEntropy});
        EXPECT_LT(prev_rec.second, tq.first) << "frame " << k;
      }
    }
  }
}

TEST(SchedulerPipeline, HeterogeneousPoolRoutesStagesByKernel) {
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with(kCapMotionEstimation), fabric_with(kCapDctTransform)};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto jobs = mixed_workload(4, 4, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 16u);
  for (const StreamJob& s : jobs) {
    for (const FrameRecord& r : s.records) {
      if (r.frame_index > 0)
        EXPECT_EQ(r.me_fabric_id, 0) << "ME stage must run on the ME-capable fabric";
      EXPECT_EQ(r.tq_fabric_id, 1) << "DCT stage must run on the DCT-capable fabric";
      EXPECT_EQ(r.fabric_id, 1) << "reconstruct must run on the DCT-capable fabric";
    }
  }
  // The ME fabric only ever loads the ME context; the DCT fabric never
  // does. Per-kernel charging keeps the two visible separately.
  EXPECT_GT(report.me_reconfig_cycles, 0u);
  EXPECT_GT(report.dct_reconfig_cycles, 0u);
  EXPECT_EQ(report.me_reconfig_cycles + report.dct_reconfig_cycles,
            report.total_reconfig_cycles);
}

TEST(SchedulerPipeline, CrossStreamOverlapObservedOnSimSchedule) {
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with(kCapMotionEstimation), fabric_with(kCapDctTransform)};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto jobs = mixed_workload(4, 6, 48);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  // With a dedicated ME fabric and a dedicated DCT fabric both saturated
  // by four streams, some ME job must run while another stream's DCT-lane
  // job does. The host may have a single core, so overlap is asserted on
  // the simulated-array schedule, which is deterministic in array cycles.
  const SimSchedule sim = simulate_timeline(jobs, report.timeline);
  int cross_overlaps = 0;
  for (const SimStageJob& a : sim.jobs) {
    if (a.stage != StageKind::kMotionEstimation) continue;
    for (const SimStageJob& b : sim.jobs) {
      if (b.stage == StageKind::kMotionEstimation) continue;
      if (a.stream_id == b.stream_id) continue;
      if (a.start_cycles < b.end_cycles && b.start_cycles < a.end_cycles) ++cross_overlaps;
    }
  }
  EXPECT_GT(cross_overlaps, 0) << "no ME/DCT overlap across streams was observed";

  // Two kernels in flight at once beat any serial schedule: the makespan
  // stays strictly below the sum of all job durations.
  std::uint64_t serial_cycles = 0;
  for (const SimStageJob& j : sim.jobs) serial_cycles += j.end_cycles - j.start_cycles;
  EXPECT_LT(sim.makespan_cycles, serial_cycles);
}

TEST(SchedulerPipeline, FrameLookaheadOverlapsWithinOneStream) {
  // A single stream on dedicated ME and DCT fabrics: frame k+1's ME job
  // is released together with frame k's DCT/quant (open-loop ME needs
  // only the original frames), so the two kernels overlap inside one
  // stream — the ROADMAP's frame-level pipelining item.
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with(kCapMotionEstimation), fabric_with(kCapDctTransform)};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto jobs = mixed_workload(1, 8, 48);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  const SimSchedule sim = simulate_timeline(jobs, report.timeline);
  int lookahead_overlaps = 0;
  for (const SimStageJob& a : sim.jobs) {
    if (a.stage != StageKind::kMotionEstimation) continue;
    for (const SimStageJob& b : sim.jobs) {
      if (b.stage == StageKind::kMotionEstimation) continue;
      if (a.frame_index != b.frame_index + 1) continue;
      if (a.start_cycles < b.end_cycles && b.start_cycles < a.end_cycles)
        ++lookahead_overlaps;
    }
  }
  EXPECT_GT(lookahead_overlaps, 0) << "frame k+1 ME never overlapped frame k DCT";

  // The lookahead window is still bounded: the queue may not even release
  // ME of frame k before the reconstruction of frame k-2 completed, which
  // the dispatch timeline shows directly.
  const IntervalMap iv = intervals_of(report.timeline);
  for (const auto& [ka, a] : iv) {
    if (std::get<2>(ka) != StageKind::kMotionEstimation) continue;
    const int k = std::get<1>(ka);
    if (k < 2) continue;
    const auto rec = iv.at({std::get<0>(ka), k - 2, StageKind::kReconstructEntropy});
    EXPECT_GT(a.first, rec.second) << "ME of frame " << k << " outran the lookahead window";
  }
}

TEST(SchedulerPipeline, PipelinedInterStreamsNeedAnMeFabric) {
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with(kCapDctTransform)};
  cfg.queue.mode = DispatchMode::kStagePipeline;
  auto jobs = mixed_workload(1, 3, 32);
  MultiStreamScheduler scheduler(library(), cfg);
  EXPECT_THROW((void)scheduler.run(jobs), std::invalid_argument);

  // Intra-only streams have no ME stage, so a DCT-only pool suffices.
  auto intra_jobs = mixed_workload(2, 1, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(intra_jobs);
  EXPECT_EQ(report.total_frames, 2u);
}

TEST(SchedulerPipeline, ResumesPartiallyEncodedStreams) {
  // Streams may arrive with frames already encoded (an earlier run, or an
  // out-of-band intra refresh): the pipeline lanes must start at
  // next_frame instead of assuming fresh streams, and the resumed result
  // must match an uninterrupted run bit for bit.
  auto full_jobs = mixed_workload(2, 4, 32);
  auto resumed_jobs = mixed_workload(2, 4, 32);
  for (StreamJob& s : resumed_jobs) {
    const video::ToyEncoder enc(library().impl(s.impl_name), me::systolic_search_fn(),
                                s.config.codec);
    FrameRecord rec;
    rec.frame_index = 0;
    rec.stats = enc.encode_frame(s.frames[0], nullptr, s.recon_state);
    s.records.push_back(rec);
    s.next_frame = 1;
  }

  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  const RunReport full = MultiStreamScheduler(library(), cfg).run(full_jobs);
  const RunReport resumed = MultiStreamScheduler(library(), cfg).run(resumed_jobs);
  EXPECT_EQ(full.total_frames, 8u);
  EXPECT_EQ(resumed.total_frames, 8u);  // summaries count the seeded frame too

  for (std::size_t s = 0; s < full_jobs.size(); ++s) {
    ASSERT_EQ(resumed_jobs[s].records.size(), 4u);
    for (std::size_t k = 0; k < 4; ++k) {
      EXPECT_EQ(resumed_jobs[s].records[k].frame_index, static_cast<int>(k));
      EXPECT_DOUBLE_EQ(resumed_jobs[s].records[k].stats.bits,
                       full_jobs[s].records[k].stats.bits);
      EXPECT_DOUBLE_EQ(resumed_jobs[s].records[k].stats.psnr_db,
                       full_jobs[s].records[k].stats.psnr_db);
    }
    EXPECT_EQ(resumed_jobs[s].recon_state.data(), full_jobs[s].recon_state.data());
  }

  // Running again with everything finished is a no-op, not a hang.
  const RunReport idle = MultiStreamScheduler(library(), cfg).run(resumed_jobs);
  EXPECT_EQ(idle.dispatches, 0u);
}

TEST(SchedulerPipeline, MonolithicJobsOnlyUseDctCapableFabrics) {
  SchedulerConfig cfg;
  cfg.fabric_configs = {fabric_with(kCapMotionEstimation), fabric_with(kCapDctTransform)};
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  auto jobs = mixed_workload(3, 3, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  EXPECT_EQ(report.total_frames, 9u);
  for (const StreamJob& s : jobs)
    for (const FrameRecord& r : s.records)
      EXPECT_EQ(r.fabric_id, 1) << "monolithic jobs need the DCT kernel";
  // The ME silicon sat idle: that gap is exactly what the stage pipeline
  // reclaims (bench_pipeline_overlap measures it).
  EXPECT_EQ(report.me_reconfig_cycles, 0u);
}

}  // namespace
}  // namespace dsra::runtime
