// Sharded scheduling core: bit-exact equivalence of single-queue vs
// sharded runs across both dispatch modes, both policies and under
// admission control (no dropped, duplicated or reordered frames and
// identical bitstreams), steal accounting, and dependency order of the
// sharded dispatch timeline.
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/sim_schedule.hpp"

namespace dsra::runtime {
namespace {

const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

std::vector<StreamJob> mixed_workload(int streams, int frames, int size) {
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // -> cordic1
      {0.5, 0.9},  // -> cordic2
      {0.9, 0.3},  // -> mixed_rom
      {0.1, 0.9},  // -> scc_full
  };
  std::vector<StreamJob> jobs;
  jobs.reserve(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = size;
    cfg.height = size;
    cfg.frame_budget = frames;
    cfg.condition = conditions[k % 4];
    cfg.codec.me_range = 4;
    cfg.seed = 900 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

/// Encoded output of stream @p a must be the bit-exact twin of @p b: the
/// same frames in the same order (no drop, no dup, no reorder) with
/// identical bits, PSNR, coded blocks and final reconstruction.
void expect_bit_exact(const StreamJob& a, const StreamJob& b) {
  ASSERT_EQ(a.records.size(), b.records.size()) << a.config.name;
  for (std::size_t k = 0; k < a.records.size(); ++k) {
    const video::FrameStats& sa = a.records[k].stats;
    const video::FrameStats& sb = b.records[k].stats;
    // Completion order within one stream is frame order in both queues —
    // a frame's successor only becomes ready once the frame is done.
    ASSERT_EQ(a.records[k].frame_index, static_cast<int>(k)) << a.config.name;
    ASSERT_EQ(b.records[k].frame_index, static_cast<int>(k)) << b.config.name;
    EXPECT_EQ(a.records[k].impl, b.records[k].impl) << a.config.name << "/" << k;
    EXPECT_DOUBLE_EQ(sa.bits, sb.bits) << a.config.name << "/" << k;
    EXPECT_DOUBLE_EQ(sa.psnr_db, sb.psnr_db) << a.config.name << "/" << k;
    EXPECT_DOUBLE_EQ(sa.mean_abs_mv, sb.mean_abs_mv) << a.config.name << "/" << k;
    EXPECT_EQ(sa.blocks_coded, sb.blocks_coded) << a.config.name << "/" << k;
    EXPECT_EQ(sa.dct_array_cycles, sb.dct_array_cycles) << a.config.name << "/" << k;
    EXPECT_EQ(sa.me_array_cycles, sb.me_array_cycles) << a.config.name << "/" << k;
  }
  EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << a.config.name;
}

struct ShardCompare {
  std::vector<StreamJob> single_jobs;
  std::vector<StreamJob> sharded_jobs;
  RunReport single;
  RunReport sharded;
};

ShardCompare run_both(SchedulerConfig cfg, int shards, int streams, int frames) {
  ShardCompare out;
  cfg.queue.shards = 1;
  out.single_jobs = mixed_workload(streams, frames, 32);
  out.single = MultiStreamScheduler(library(), cfg).run(out.single_jobs);
  cfg.queue.shards = shards;
  out.sharded_jobs = mixed_workload(streams, frames, 32);
  out.sharded = MultiStreamScheduler(library(), cfg).run(out.sharded_jobs);
  EXPECT_EQ(out.single.queue_shards, 1);
  EXPECT_GT(out.sharded.queue_shards, 1);
  EXPECT_EQ(out.single.total_frames, out.sharded.total_frames);
  EXPECT_EQ(out.single.dispatches, out.sharded.dispatches);
  // Batching amortizes, never inflates, the lock rounds.
  EXPECT_LE(out.sharded.dispatch_batches, out.sharded.dispatches);
  EXPECT_GT(out.sharded.dispatch_batches, 0u);
  for (std::size_t s = 0; s < out.single_jobs.size(); ++s)
    expect_bit_exact(out.single_jobs[s], out.sharded_jobs[s]);
  return out;
}

TEST(ShardedSched, BitExactMonolithicMode) {
  SchedulerConfig cfg;
  cfg.fabrics = 3;
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  run_both(cfg, 4, /*streams=*/8, /*frames=*/3);
}

TEST(ShardedSched, BitExactStagePipeline) {
  SchedulerConfig cfg;
  cfg.fabrics = 3;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  run_both(cfg, 4, /*streams=*/6, /*frames=*/4);
}

TEST(ShardedSched, BitExactRoundRobinPolicy) {
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.policy = SchedulingPolicy::kRoundRobin;
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  run_both(cfg, 2, /*streams=*/6, /*frames=*/3);
}

TEST(ShardedSched, BitExactWithAdmissionEnabled) {
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  cfg.admission.enabled = true;
  // Admission (and its pilot) runs before the queue is built and decides
  // on modeled cycles only, so both runs must land identical rungs; the
  // admitted streams must then encode bit-exact output either way.
  const ShardCompare r = run_both(cfg, 4, /*streams=*/8, /*frames=*/3);
  EXPECT_EQ(r.single.admission.admitted, r.sharded.admission.admitted);
  EXPECT_EQ(r.single.admission.rejected, r.sharded.admission.rejected);
  for (std::size_t s = 0; s < r.single_jobs.size(); ++s)
    EXPECT_EQ(r.single_jobs[s].admission_rung, r.sharded_jobs[s].admission_rung) << s;
}

TEST(ShardedSched, BitExactWithAdmissionShedding) {
  SchedulerConfig cfg;
  cfg.fabrics = 1;
  cfg.admission.enabled = true;
  cfg.queue.shards = 1;
  auto single = mixed_workload(4, 3, 32);
  single[2].config.sla.deadline_cycles = 1;  // no rung can satisfy this
  const RunReport a = MultiStreamScheduler(library(), cfg).run(single);
  cfg.queue.shards = 4;
  auto sharded = mixed_workload(4, 3, 32);
  sharded[2].config.sla.deadline_cycles = 1;
  const RunReport b = MultiStreamScheduler(library(), cfg).run(sharded);
  EXPECT_EQ(a.admission.rejected, 1u);
  EXPECT_EQ(b.admission.rejected, 1u);
  EXPECT_EQ(single[2].admission_rung, DegradationRung::kReject);
  EXPECT_EQ(sharded[2].admission_rung, DegradationRung::kReject);
  EXPECT_TRUE(sharded[2].records.empty());  // shed streams encode nothing
  for (std::size_t s = 0; s < single.size(); ++s)
    expect_bit_exact(single[s], sharded[s]);
}

TEST(ShardedSched, WorkStealingHappensAndIsCounted) {
  // Every stream shares one context (one fixed condition), split over 4
  // sub-shards served by only 2 fabrics: ways 2 and 3 are nobody's home
  // shard, so their streams can complete only through sibling steals —
  // steals must occur under ANY thread interleaving, not just a lucky
  // one (the suite runs under TSan, whose serialization would defeat a
  // timing-dependent steal setup).
  SchedulerConfig cfg;
  cfg.fabrics = 2;
  cfg.queue.shards = 4;
  std::vector<StreamJob> jobs;
  for (int k = 0; k < 12; ++k) {
    StreamConfig sc;
    sc.name = "steal" + std::to_string(k);
    sc.width = 32;
    sc.height = 32;
    sc.frame_budget = 3;
    sc.condition = {1.0, 1.0};
    sc.codec.me_range = 4;
    sc.seed = 50 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, sc));
  }
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);
  EXPECT_EQ(report.total_frames, 36u);
  EXPECT_GT(report.queue_steals, 0u);
  EXPECT_GT(report.queue_shards, 1);
  for (const StreamJob& s : jobs) {
    ASSERT_EQ(s.records.size(), 3u) << s.config.name;
    for (std::size_t k = 0; k < s.records.size(); ++k)
      EXPECT_EQ(s.records[k].frame_index, static_cast<int>(k)) << s.config.name;
  }
}

TEST(ShardedSched, TimelineRespectsStageDependencies) {
  SchedulerConfig cfg;
  cfg.fabrics = 3;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  cfg.queue.shards = 4;
  auto jobs = mixed_workload(5, 4, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);

  // (start, end) dispatch ticks per (stream, frame, stage).
  std::map<std::tuple<int, int, StageKind>, std::pair<std::uint64_t, std::uint64_t>> iv;
  for (const StageEvent& e : report.timeline) {
    auto& slot = iv[{e.stream_id, e.frame_index, e.stage}];
    (e.start ? slot.first : slot.second) = e.tick;
  }
  for (const StreamJob& s : jobs) {
    for (int k = 0; k < static_cast<int>(s.frames.size()); ++k) {
      const auto tq = iv.at({s.id, k, StageKind::kTransformQuant});
      const auto rec = iv.at({s.id, k, StageKind::kReconstructEntropy});
      EXPECT_LT(tq.second, rec.first) << "frame " << k << ": reconstruct before DCT done";
      if (k > 0) {
        const auto me = iv.at({s.id, k, StageKind::kMotionEstimation});
        EXPECT_LT(me.second, tq.first) << "frame " << k << ": DCT before ME done";
        const auto prev = iv.at({s.id, k - 1, StageKind::kReconstructEntropy});
        EXPECT_LT(prev.second, tq.first)
            << "frame " << k << ": DCT before frame " << k - 1 << " reconstructed";
      }
    }
  }
  // The merged sharded timeline must replay cleanly through the event
  // core's simulated schedule (dependency-consistent, positive makespan).
  const SimSchedule sim =
      simulate_timeline(jobs, report.timeline, cfg.queue.pipeline_lookahead);
  EXPECT_GT(sim.makespan_cycles, 0u);
  EXPECT_EQ(report.sim_makespan_cycles, sim.makespan_cycles);
}

TEST(ShardedSched, HeterogeneousCapabilitiesRouteCorrectly) {
  // One DCT-only fabric + one ME-only fabric in stage mode: the sharded
  // queue's capability/placement filters must route every stage to a
  // fabric that can run it, and the run must still drain completely.
  SchedulerConfig cfg;
  cfg.queue.mode = DispatchMode::kStagePipeline;
  cfg.queue.shards = 2;
  FabricConfig dct_only;
  dct_only.capabilities = kCapDctTransform;
  FabricConfig me_only;
  me_only.capabilities = kCapMotionEstimation;
  cfg.fabric_configs = {dct_only, me_only};
  auto jobs = mixed_workload(4, 3, 32);
  const RunReport report = MultiStreamScheduler(library(), cfg).run(jobs);
  EXPECT_EQ(report.total_frames, 12u);
  for (const StreamJob& s : jobs)
    for (const FrameRecord& r : s.records) {
      if (r.frame_index > 0) {
        EXPECT_EQ(r.me_fabric_id, 1) << s.config.name;
      }
      EXPECT_EQ(r.tq_fabric_id, 0) << s.config.name;
      EXPECT_EQ(r.fabric_id, 0) << s.config.name;
    }
}

}  // namespace
}  // namespace dsra::runtime
