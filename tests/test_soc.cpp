// SoC platform: bus cost model, controller schedules, reconfiguration
// manager and the platform assembly (Fig 1), including dynamic switching
// between DCT implementations under runtime constraints.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "soc/controller.hpp"
#include "soc/platform.hpp"

namespace dsra::soc {
namespace {

TEST(Bus, TransferCyclesModelBurstsAndWidth) {
  Bus bus(BusConfig{32, 2, 8});
  EXPECT_EQ(bus.transfer_cycles(0), 0u);
  EXPECT_EQ(bus.transfer_cycles(32), 1u + 2u);        // 1 word + 1 burst
  EXPECT_EQ(bus.transfer_cycles(8 * 32), 8u + 2u);    // exactly one burst
  EXPECT_EQ(bus.transfer_cycles(9 * 32), 9u + 4u);    // spills into a second
  bus.transfer(64);
  bus.transfer(64);
  EXPECT_EQ(bus.total_bits(), 128u);
  EXPECT_GT(bus.total_cycles(), 0u);
  bus.reset_stats();
  EXPECT_EQ(bus.total_bits(), 0u);
}

TEST(Controller, DaScheduleShape) {
  const auto words = da_schedule(12);
  ASSERT_EQ(words.size(), 13u);
  EXPECT_TRUE(words[0].load);
  EXPECT_FALSE(words[0].en);
  EXPECT_TRUE(words[1].en);
  EXPECT_TRUE(words[1].sub);  // MSB cycle subtracts
  for (std::size_t k = 2; k < words.size(); ++k) {
    EXPECT_TRUE(words[k].en);
    EXPECT_FALSE(words[k].sub);
    EXPECT_FALSE(words[k].load);
  }
}

TEST(Controller, BlockRasterCoversTheFrame) {
  const auto blocks = block_raster(48, 32, 16);
  EXPECT_EQ(blocks.size(), 3u * 2u);
  EXPECT_EQ(blocks[0].x, 0);
  EXPECT_EQ(blocks.back().x, 32);
  EXPECT_EQ(blocks.back().y, 16);
}

TEST(Controller, MeBatchScheduleMatchesSystolicModel) {
  const auto batches = me_batch_schedule(8, 4);
  // ceil(17/4) bands * 17 dx values.
  EXPECT_EQ(batches.size(), 5u * 17u);
  // Last band has a single active module (17 = 4*4 + 1).
  EXPECT_EQ(batches.back().active, 1);
  EXPECT_EQ(batches.front().active, 4);
}

TEST(Reconfig, SwitchCostsTrackBitstreamSize) {
  ReconfigManager mgr(ReconfigPortConfig{32, 64});
  mgr.store("small", std::vector<std::uint8_t>(100, 0));
  mgr.store("large", std::vector<std::uint8_t>(10000, 0));
  EXPECT_LT(mgr.switch_cycles("small"), mgr.switch_cycles("large"));
  EXPECT_EQ(mgr.switch_cycles("small"), 100u * 8u / 32u + 64u);

  EXPECT_EQ(mgr.activate("small"), mgr.switch_cycles("small"));
  EXPECT_EQ(mgr.activate("small"), 0u) << "already active";
  EXPECT_GT(mgr.activate("large"), 0u);
  EXPECT_EQ(mgr.switches_performed(), 2);
  EXPECT_THROW((void)mgr.activate("unknown"), std::invalid_argument);
}

TEST(Reconfig, PolicySelectsByRuntimeCondition) {
  EXPECT_EQ(select_dct_implementation({1.0, 1.0}), "cordic1");
  EXPECT_EQ(select_dct_implementation({0.1, 1.0}), "scc_full");
  EXPECT_EQ(select_dct_implementation({0.9, 0.3}), "mixed_rom");
  EXPECT_EQ(select_dct_implementation({0.5, 0.9}), "cordic2");
}

TEST(Reconfig, PolicyClampsOutOfRangeConditions) {
  // Out-of-range sensor readings clamp instead of misselecting.
  EXPECT_EQ(select_dct_implementation({-0.5, 1.0}), "scc_full");
  EXPECT_EQ(select_dct_implementation({2.0, 2.0}), "cordic1");
  EXPECT_EQ(select_dct_implementation({1.0, -3.0}), "mixed_rom");
  // Non-finite values collapse to the conservative end.
  EXPECT_EQ(select_dct_implementation({std::nan(""), 1.0}), "scc_full");
  EXPECT_EQ(select_dct_implementation({1.0, std::nan("")}), "mixed_rom");
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(select_dct_implementation({inf, 1.0}), "scc_full");
  EXPECT_EQ(select_dct_implementation({1.0, inf}), "mixed_rom");
  // Exact boundary values: the thresholds are half-open.
  EXPECT_EQ(select_dct_implementation({0.25, 1.0}), "cordic2");
  EXPECT_EQ(select_dct_implementation({1.0, 0.5}), "cordic1");
  EXPECT_EQ(select_dct_implementation({0.6, 1.0}), "cordic1");
  EXPECT_EQ(select_dct_implementation({0.0, 0.0}), "scc_full");

  const RuntimeCondition c = clamp_condition({-1.0, 5.0});
  EXPECT_EQ(c.battery_level, 0.0);
  EXPECT_EQ(c.channel_quality, 1.0);
}

TEST(Reconfig, ReactivationAfterEvictionChargesTheFullSwitch) {
  // Regression: evicting the active context used to leave the active
  // marker set, so re-activating the same name after a fresh store was
  // reported as a free switch even though the configuration port had to
  // reload the whole bitstream.
  ReconfigManager mgr(ReconfigPortConfig{32, 64});
  mgr.store("x", std::vector<std::uint8_t>(100, 0));
  EXPECT_GT(mgr.activate("x"), 0u);
  EXPECT_EQ(mgr.activate("x"), 0u) << "already active";

  EXPECT_TRUE(mgr.evict("x"));
  EXPECT_FALSE(mgr.active().has_value())
      << "an evicted context cannot stay marked active";
  EXPECT_THROW((void)mgr.activate("x"), std::invalid_argument) << "needs a fresh store";

  mgr.store("x", std::vector<std::uint8_t>(100, 0));
  EXPECT_EQ(mgr.activate("x"), mgr.switch_cycles("x"))
      << "the reload through the port must be charged in full";
  EXPECT_EQ(mgr.switches_performed(), 2);

  // Evicting a non-active context leaves the active marker alone.
  mgr.store("y", std::vector<std::uint8_t>(50, 0));
  EXPECT_TRUE(mgr.evict("y"));
  ASSERT_TRUE(mgr.active().has_value());
  EXPECT_EQ(*mgr.active(), "x");
}

TEST(Reconfig, ClampedSensorValuesFeedBoundarySelectionsExactly) {
  const double inf = std::numeric_limits<double>::infinity();
  const double nan = std::nan("");

  // clamp_condition collapses every non-finite reading to 0 and pins
  // finite readings into [0, 1].
  EXPECT_EQ(clamp_condition({nan, nan}).battery_level, 0.0);
  EXPECT_EQ(clamp_condition({inf, -inf}).battery_level, 0.0);
  EXPECT_EQ(clamp_condition({inf, -inf}).channel_quality, 0.0);
  EXPECT_EQ(clamp_condition({-0.0, 1.5}).battery_level, 0.0);
  EXPECT_EQ(clamp_condition({0.25, 0.5}).battery_level, 0.25);
  EXPECT_EQ(clamp_condition({0.25, 0.5}).channel_quality, 0.5);

  // The policy thresholds are half-open: the boundary value itself
  // belongs to the upper side. Feed each boundary exactly.
  EXPECT_EQ(select_dct_implementation({0.25, 1.0}), "cordic2");
  EXPECT_EQ(select_dct_implementation({0.25 - 1e-9, 1.0}), "scc_full");
  EXPECT_EQ(select_dct_implementation({1.0, 0.5}), "cordic1");
  EXPECT_EQ(select_dct_implementation({1.0, 0.5 - 1e-9}), "mixed_rom");
  EXPECT_EQ(select_dct_implementation({0.6, 1.0}), "cordic1");
  EXPECT_EQ(select_dct_implementation({0.6 - 1e-9, 1.0}), "cordic2");

  // Broken sensors land on the conservative side of every boundary, so
  // the selection degrades to the low-power / robust mappings instead of
  // reading garbage.
  EXPECT_EQ(select_dct_implementation({nan, 0.25}), "scc_full");
  EXPECT_EQ(select_dct_implementation({0.6, nan}), "mixed_rom");
  EXPECT_EQ(select_dct_implementation({-inf, inf}), "scc_full");
  // Even +inf is a broken reading: it collapses to 0, not to 1.
  EXPECT_EQ(select_dct_implementation({inf, inf}), "scc_full");
}

TEST(Reconfig, ByteAccountingAndEvictionHook) {
  ReconfigManager mgr;
  mgr.store("x", std::vector<std::uint8_t>(64, 0));
  mgr.store("y", std::vector<std::uint8_t>(32, 0));
  EXPECT_EQ(mgr.stored_bytes(), 96u);
  EXPECT_EQ(mgr.stored_count(), 2u);
  EXPECT_EQ(mgr.bytes("x"), 64u);

  mgr.store("x", std::vector<std::uint8_t>(16, 0));  // replace, not leak
  EXPECT_EQ(mgr.stored_bytes(), 48u);

  std::string evicted;
  std::size_t freed = 0;
  mgr.set_eviction_hook([&](const std::string& name, std::size_t bytes) {
    evicted = name;
    freed = bytes;
  });
  EXPECT_TRUE(mgr.evict("x"));
  EXPECT_EQ(evicted, "x");
  EXPECT_EQ(freed, 16u);
  EXPECT_FALSE(mgr.evict("x")) << "double evict is a no-op";
  EXPECT_EQ(mgr.stored_bytes(), 32u);
  EXPECT_THROW((void)mgr.bytes("x"), std::invalid_argument);
}

TEST(Platform, BuildsAllSixImplementationsAndSwitches) {
  Platform platform;
  EXPECT_EQ(platform.build_dct_library(), 6);
  EXPECT_EQ(platform.reconfig().names().size(), 6u);

  // Fewest clusters -> smallest bitstream? Not necessarily (ROM contents
  // dominate), but scc_full (256-word ROMs) must be the largest stream.
  std::uint64_t scc_full_cycles = platform.reconfig().switch_cycles("scc_full");
  for (const auto& name : platform.reconfig().names())
    EXPECT_LE(platform.reconfig().switch_cycles(name), scc_full_cycles) << name;

  const std::uint64_t cycles = platform.reconfigure_dct("cordic1");
  EXPECT_GT(cycles, 0u);
  ASSERT_NE(platform.active_dct(), nullptr);
  EXPECT_EQ(platform.active_dct()->name(), "cordic1");
  ASSERT_NE(platform.design_of("cordic1"), nullptr);
  EXPECT_TRUE(platform.design_of("cordic1")->routes.success);

  // Dynamic switch driven by a low-battery condition.
  const std::string low_power = select_dct_implementation({0.1, 1.0});
  EXPECT_GT(platform.reconfigure_dct(low_power), 0u);
  EXPECT_EQ(platform.active_dct()->name(), "scc_full");
}

TEST(Platform, FrameTimingDecomposes) {
  Platform platform;
  platform.build_dct_library();
  platform.reconfigure_dct("da_basic");
  const FrameTiming t = platform.estimate_inter_frame(64, 64, 8);
  EXPECT_GT(t.me_cycles, 0u);
  EXPECT_GT(t.dct_cycles, 0u);
  EXPECT_GT(t.bus_cycles, 0u);
  EXPECT_EQ(t.total(), t.me_cycles + t.dct_cycles + t.bus_cycles + t.reconfig_cycles);

  // Larger search range costs more ME cycles.
  EXPECT_GT(platform.estimate_inter_frame(64, 64, 16).me_cycles, t.me_cycles);
}

}  // namespace
}  // namespace dsra::soc
