// Spatial multi-tenancy: partition plans, region-scoped configuration
// isolation, and partition-granular dispatch.
//
// The load-bearing property is tenant isolation: a region-scoped delta
// applied on behalf of one partition must never write a byte outside its
// rectangle — fuzzed here over random composites and random tenant
// deltas (the ASan+UBSan CI job runs this file instrumented, alongside
// test_fuzz_flow), and checked at runtime through Fabric's composite
// bookkeeping. Co-tenant scheduling must be bit-exact with exclusive
// occupancy: a partition only moves jobs, never changes the encode.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/config_codec.hpp"
#include "runtime/fabric_pool.hpp"
#include "runtime/partition.hpp"
#include "runtime/scheduler.hpp"

namespace dsra::runtime {
namespace {

/// One shared library build (place/route of every context on both
/// geometries is the expensive part; every test reads it immutably).
const KernelLibrary& shared_library() {
  static const KernelLibrary lib(
      KernelLibraryConfig{{kDefaultGeometry, kSmallSccGeometry}});
  return lib;
}

std::vector<std::uint8_t> payload_of(const ClusterConfig& cfg) {
  BitWriter w;
  encode_config(cfg, w);
  w.align_to_byte();
  return w.bytes();
}

/// Random fabric-grid composite: every tile independently occupied with
/// one of a few valid cluster payloads, emitted in canonical (y, x) order.
ConfigFrameImage random_composite(Rng& rng, int width, int height) {
  const std::vector<std::vector<std::uint8_t>> payloads = {
      payload_of(AddShiftCfg{16, AddShiftOp::kAdd, 0, true}),
      payload_of(MuxRegCfg{8, true}),
      payload_of(CompCfg{16, CompOp::kMin2}),
  };
  ConfigFrameImage image;
  image.width = width;
  image.height = height;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x)
      if (rng.next_bool(0.25))
        image.frames.push_back({x, y, payloads[rng.next_below(payloads.size())]});
  return image;
}

/// Random tenant-local delta over the partition's own width x height
/// grid: disjoint rewrites and clears, canonical order.
ConfigDelta random_local_delta(Rng& rng, int width, int height) {
  const std::vector<std::uint8_t> payload =
      payload_of(AbsDiffCfg{8, AbsDiffOp::kAbsDiff, false});
  ConfigDelta delta;
  delta.width = width;
  delta.height = height;
  for (int y = 0; y < height; ++y)
    for (int x = 0; x < width; ++x) {
      if (rng.next_bool(0.25))
        delta.rewrites.push_back({x, y, payload});
      else if (rng.next_bool(0.15))
        delta.clears.push_back({x, y});
    }
  return delta;
}

TEST(PartitionPlan, StaticPlanSplitsTheFullArray) {
  const std::vector<PartitionSpec> plan = static_partition_plan(kDefaultGeometry);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].geometry, kSmallSccGeometry);
  EXPECT_EQ(plan[1].geometry, kSmallSccGeometry);
  EXPECT_EQ(plan[0].origin_y, 0);
  EXPECT_EQ(plan[1].origin_y, kSmallSccGeometry.height);
  EXPECT_NO_THROW(validate_partition_plan(kDefaultGeometry, plan));
  EXPECT_EQ(to_string(plan[1]), "8x4@(0,4)");

  // A fabric too small to stack two slots stays exclusive.
  EXPECT_TRUE(static_partition_plan(kSmallSccGeometry).empty());
}

TEST(PartitionPlan, ValidateRejectsBadPlans) {
  const PartitionSpec ok{0, 0, kSmallSccGeometry};
  EXPECT_THROW(
      validate_partition_plan(kDefaultGeometry, {PartitionSpec{0, 0, {0, 4}}}),
      std::invalid_argument);
  EXPECT_THROW(
      validate_partition_plan(kDefaultGeometry, {PartitionSpec{8, 0, kSmallSccGeometry}}),
      std::invalid_argument);  // 8 + 8 > 12: off the right edge
  EXPECT_THROW(
      validate_partition_plan(kDefaultGeometry, {PartitionSpec{-1, 0, kSmallSccGeometry}}),
      std::invalid_argument);
  EXPECT_THROW(
      validate_partition_plan(kDefaultGeometry, {ok, PartitionSpec{4, 2, kSmallSccGeometry}}),
      std::invalid_argument);  // overlaps the first slot
  EXPECT_NO_THROW(validate_partition_plan(kDefaultGeometry, {ok}));
  EXPECT_NO_THROW(validate_partition_plan(kDefaultGeometry, {}));
}

TEST(RegionCodec, TranslatePreservesFramesAndOrder) {
  const ConfigFrameImage& local =
      shared_library().frame_image("scc_full", kSmallSccGeometry);
  ASSERT_FALSE(local.frames.empty());
  const PartitionSpec slot{0, kSmallSccGeometry.height, kSmallSccGeometry};
  const ConfigFrameImage fabric_image = translate_frame_image(
      local, slot.region(), kDefaultGeometry.width, kDefaultGeometry.height);
  ASSERT_EQ(fabric_image.frames.size(), local.frames.size());
  for (std::size_t i = 0; i < local.frames.size(); ++i) {
    EXPECT_EQ(fabric_image.frames[i].x, local.frames[i].x + slot.origin_x);
    EXPECT_EQ(fabric_image.frames[i].y, local.frames[i].y + slot.origin_y);
    EXPECT_EQ(fabric_image.frames[i].payload, local.frames[i].payload);
    EXPECT_TRUE(slot.region().contains(fabric_image.frames[i].x, fabric_image.frames[i].y));
  }

  // A region that does not fit the fabric grid is refused.
  EXPECT_THROW(translate_frame_image(local, ConfigRegion{8, 0, 8, 4},
                                     kDefaultGeometry.width, kDefaultGeometry.height),
               std::invalid_argument);
  // A region whose size does not match the image grid is refused.
  EXPECT_THROW(translate_frame_image(local, ConfigRegion{0, 0, 4, 4},
                                     kDefaultGeometry.width, kDefaultGeometry.height),
               std::invalid_argument);
}

TEST(RegionCodec, SealRefusesStraysAndCorruption) {
  const ConfigRegion region{0, 4, 8, 4};
  ConfigDelta delta;
  delta.width = kDefaultGeometry.width;
  delta.height = kDefaultGeometry.height;
  delta.rewrites.push_back({2, 5, payload_of(MuxRegCfg{8, true})});
  delta.clears.push_back({7, 7});
  const std::vector<std::uint8_t> sealed = encode_region_delta(delta, region);
  const RegionDelta decoded = decode_region_delta(sealed);
  EXPECT_EQ(decoded.region, region);
  EXPECT_EQ(decoded.delta, delta);

  // A frame outside the rectangle is refused at encode.
  ConfigDelta stray = delta;
  stray.rewrites.push_back({9, 1, payload_of(MuxRegCfg{8, true})});
  EXPECT_THROW(encode_region_delta(stray, region), std::invalid_argument);
  ConfigDelta stray_clear = delta;
  stray_clear.clears.push_back({0, 0});
  EXPECT_THROW(encode_region_delta(stray_clear, region), std::invalid_argument);

  // Any corrupted byte is rejected by the seal before a frame is written.
  for (std::size_t i = 0; i < sealed.size(); i += 3) {
    std::vector<std::uint8_t> bad = sealed;
    bad[i] ^= 0x40;
    EXPECT_THROW(decode_region_delta(bad), std::runtime_error) << "byte " << i;
  }
}

TEST(RegionCodec, FuzzRegionDeltaNeverEscapesItsRectangle) {
  Rng rng(0xD5AA0001);
  const int fw = kDefaultGeometry.width;
  const int fh = kDefaultGeometry.height;
  const ConfigRegion regions[] = {{0, 0, 8, 4}, {0, 4, 8, 4}};
  for (int iter = 0; iter < 200; ++iter) {
    const ConfigFrameImage composite = random_composite(rng, fw, fh);
    const ConfigRegion& region = regions[iter % 2];
    const ConfigRegion& other = regions[(iter + 1) % 2];
    const ConfigDelta local = random_local_delta(rng, region.width, region.height);
    const ConfigDelta fabric_delta = translate_config_delta(local, region, fw, fh);
    ASSERT_TRUE(delta_within_region(fabric_delta, region));

    const RegionDelta sealed =
        decode_region_delta(encode_region_delta(fabric_delta, region));
    ASSERT_EQ(sealed.region, region);
    const ConfigFrameImage after =
        apply_region_delta(composite, sealed.delta, sealed.region);

    // Every frame outside the rectangle survives byte-identically, and
    // nothing outside the rectangle appears or disappears.
    std::vector<const ConfigFrame*> before_out, after_out;
    for (const ConfigFrame& f : composite.frames)
      if (!region.contains(f.x, f.y)) before_out.push_back(&f);
    for (const ConfigFrame& f : after.frames)
      if (!region.contains(f.x, f.y)) after_out.push_back(&f);
    ASSERT_EQ(before_out.size(), after_out.size()) << "iteration " << iter;
    for (std::size_t i = 0; i < before_out.size(); ++i) {
      EXPECT_EQ(before_out[i]->x, after_out[i]->x);
      EXPECT_EQ(before_out[i]->y, after_out[i]->y);
      EXPECT_EQ(before_out[i]->payload, after_out[i]->payload);
    }

    // The same sealed delta refuses to apply as another tenant's region.
    if (!sealed.delta.empty()) {
      EXPECT_THROW(apply_region_delta(composite, sealed.delta, other),
                   std::invalid_argument);
    }

    // blit_region obeys the same boundary: tenant frames land inside,
    // outside frames survive untouched.
    ConfigFrameImage tenant;
    tenant.width = region.width;
    tenant.height = region.height;
    for (const ConfigFrame& f : random_composite(rng, region.width, region.height).frames)
      tenant.frames.push_back(f);
    const ConfigFrameImage blitted = blit_region(
        composite, translate_frame_image(tenant, region, fw, fh), region);
    std::size_t outside = 0;
    for (const ConfigFrame& f : blitted.frames)
      if (!region.contains(f.x, f.y)) ++outside;
    EXPECT_EQ(outside, before_out.size()) << "iteration " << iter;
  }
}

TEST(FabricPoolTenancy, SlotsExpandFromPartitionPlans) {
  FabricConfig tenant;
  tenant.geometry = kDefaultGeometry;
  tenant.partitions = static_partition_plan(kDefaultGeometry);
  tenant.context_capacity_bytes = 4096;
  FabricConfig whole;
  whole.geometry = kDefaultGeometry;

  FabricPool pool({tenant, whole}, shared_library());
  EXPECT_EQ(pool.size(), 3);            // 2 partition slots + 1 exclusive
  EXPECT_EQ(pool.physical_count(), 2);  // on 2 physical fabrics
  EXPECT_EQ(pool.physical_of(), (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(pool.physical_tiles(), 2 * kDefaultGeometry.tiles());
  EXPECT_FALSE(pool.at(0).exclusive());
  EXPECT_FALSE(pool.at(1).exclusive());
  EXPECT_TRUE(pool.at(2).exclusive());
  EXPECT_EQ(pool.at(0).geometry(), kSmallSccGeometry);
  EXPECT_EQ(pool.at(1).partition().origin_y, kSmallSccGeometry.height);
  // Co-tenants split the physical context store.
  EXPECT_EQ(pool.at(0).cache().config().capacity_bytes, 2048u);

  // An invalid plan is refused at pool construction.
  FabricConfig bad = tenant;
  bad.partitions = {PartitionSpec{0, 0, kSmallSccGeometry},
                    PartitionSpec{0, 2, kSmallSccGeometry}};
  EXPECT_THROW(FabricPool({bad}, shared_library()), std::invalid_argument);
}

TEST(FabricPoolTenancy, CoTenantProgrammingStaysInsideItsRectangle) {
  FabricConfig tenant;
  tenant.geometry = kDefaultGeometry;
  tenant.partitions = static_partition_plan(kDefaultGeometry);
  tenant.partial_reconfig = true;
  FabricPool pool({tenant}, shared_library());
  ASSERT_EQ(pool.size(), 2);

  // Cold loads: each tenant's rectangle holds exactly its translated
  // context image; the composite is their disjoint union.
  pool.at(0).prepare("scc_full");
  pool.at(1).prepare("mixed_rom");
  const ConfigFrameImage expect0 =
      translate_frame_image(shared_library().frame_image("scc_full", kSmallSccGeometry),
                            pool.at(0).partition().region(), kDefaultGeometry.width,
                            kDefaultGeometry.height);
  const ConfigFrameImage expect1 =
      translate_frame_image(shared_library().frame_image("mixed_rom", kSmallSccGeometry),
                            pool.at(1).partition().region(), kDefaultGeometry.width,
                            kDefaultGeometry.height);
  EXPECT_EQ(pool.at(0).region_image().frames, expect0.frames);
  EXPECT_EQ(pool.at(1).region_image().frames, expect1.frames);
  EXPECT_EQ(pool.composite_image(0).frames.size(),
            expect0.frames.size() + expect1.frames.size());

  // A partial switch on slot 0 must go down the sealed region-delta path
  // and leave slot 1's rectangle byte-identical.
  const ConfigFrameImage other_before = pool.at(1).region_image();
  pool.at(0).prepare("scc_even_odd");
  EXPECT_GE(pool.at(0).region_deltas(), 1u);
  const ConfigFrameImage expect0b =
      translate_frame_image(shared_library().frame_image("scc_even_odd", kSmallSccGeometry),
                            pool.at(0).partition().region(), kDefaultGeometry.width,
                            kDefaultGeometry.height);
  EXPECT_EQ(pool.at(0).region_image().frames, expect0b.frames);
  EXPECT_EQ(pool.at(1).region_image().frames, other_before.frames);
  EXPECT_EQ(pool.region_deltas_applied() + pool.region_blits(),
            pool.at(0).region_deltas() + pool.at(0).region_blits() +
                pool.at(1).region_deltas() + pool.at(1).region_blits());
}

std::vector<StreamJob> scc_workload(int streams, int frames) {
  std::vector<StreamJob> jobs;
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = 32;
    cfg.height = 32;
    cfg.frame_budget = frames;
    cfg.condition = k % 2 == 0 ? soc::RuntimeCondition{0.1, 0.9}   // scc_full
                               : soc::RuntimeCondition{0.9, 0.3};  // mixed_rom
    cfg.codec.me_range = 4;
    cfg.seed = 9300 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

RunReport run_scc(const std::vector<FabricConfig>& fabrics, std::vector<StreamJob>& jobs) {
  SchedulerConfig cfg;
  cfg.fabric_configs = fabrics;
  cfg.queue.mode = DispatchMode::kMonolithicFrames;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.queue.max_affinity_run = 64;
  cfg.queue.aging_threshold = 96;
  jobs = scc_workload(6, 3);
  return MultiStreamScheduler(shared_library(), cfg).run(jobs);
}

TEST(TenancyScheduling, CoTenantEncodeBitExactWithExclusive) {
  FabricConfig whole;
  whole.geometry = kDefaultGeometry;
  whole.partial_reconfig = true;
  FabricConfig tenant = whole;
  tenant.partitions = static_partition_plan(kDefaultGeometry);

  std::vector<StreamJob> exclusive_jobs, tenancy_jobs;
  const RunReport exclusive = run_scc({whole, whole}, exclusive_jobs);
  const RunReport tenancy = run_scc({tenant, tenant}, tenancy_jobs);

  EXPECT_EQ(exclusive.fabrics, 2);
  EXPECT_EQ(tenancy.fabrics, 4);
  EXPECT_EQ(tenancy.physical_fabrics, 2);
  ASSERT_EQ(tenancy.partitions.size(), 4u);
  EXPECT_FALSE(tenancy.partitions[0].exclusive);
  EXPECT_EQ(tenancy.partitions[1].physical, 0);
  EXPECT_EQ(tenancy.partitions[2].physical, 1);

  // Exclusive slots own their ports: no contention is ever charged.
  EXPECT_EQ(exclusive.port_contention_cycles, 0u);
  // Four co-tenant slots cold-load at tick 0, two per physical port: the
  // second load on each port serializes behind the first.
  EXPECT_GT(tenancy.port_contention_cycles, 0u);
  // The partitioned run routed every frame and matched the exclusive
  // encode bit for bit.
  ASSERT_EQ(exclusive_jobs.size(), tenancy_jobs.size());
  for (std::size_t s = 0; s < exclusive_jobs.size(); ++s) {
    const StreamJob& a = exclusive_jobs[s];
    const StreamJob& b = tenancy_jobs[s];
    ASSERT_EQ(a.records.size(), b.records.size()) << "stream " << s;
    EXPECT_EQ(a.recon_state.data(), b.recon_state.data()) << "stream " << s;
    for (std::size_t f = 0; f < a.records.size(); ++f) {
      EXPECT_EQ(a.records[f].impl, b.records[f].impl);
      EXPECT_EQ(a.records[f].stats.bits, b.records[f].stats.bits);
      EXPECT_EQ(a.records[f].stats.psnr_db, b.records[f].stats.psnr_db);
    }
  }
  // Region-scoped programming happened on the partitioned pool.
  std::uint64_t region_ops = 0;
  for (const PartitionSummary& p : tenancy.partitions)
    region_ops += p.region_deltas + p.region_blits;
  EXPECT_GT(region_ops, 0u);
}

TEST(TenancyScheduling, PartitionedOnlyPoolRejectsUnplaceableContext) {
  FabricConfig tenant;
  tenant.geometry = kDefaultGeometry;
  tenant.partitions = static_partition_plan(kDefaultGeometry);

  SchedulerConfig cfg;
  cfg.fabric_configs = {tenant};
  std::vector<StreamJob> jobs;
  StreamConfig stream;
  stream.name = "hd";
  stream.width = 32;
  stream.height = 32;
  stream.frame_budget = 2;
  stream.condition = {1.0, 1.0};  // cordic1: needs the full 12x8 array
  jobs.push_back(make_synthetic_job(0, stream));

  MultiStreamScheduler sched(shared_library(), cfg);
  EXPECT_THROW(sched.run(jobs), std::invalid_argument);

  // A partition plan naming a geometry the library lacks is refused at
  // scheduler construction.
  FabricConfig odd = tenant;
  odd.partitions = {PartitionSpec{0, 0, {6, 4}}, PartitionSpec{0, 4, {6, 4}}};
  SchedulerConfig bad;
  bad.fabric_configs = {odd};
  EXPECT_THROW(MultiStreamScheduler(shared_library(), bad), std::invalid_argument);
}

}  // namespace
}  // namespace dsra::runtime
