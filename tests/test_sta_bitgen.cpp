// Static timing analysis and device bitstream generation / read-back.
#include <gtest/gtest.h>

#include "dct/impl.hpp"
#include "mapper/flow.hpp"

namespace dsra::map {
namespace {

Netlist comb_chain(int depth) {
  Netlist nl("chain");
  NetId prev = nl.add_input("x", 16);
  for (int i = 0; i < depth; ++i) {
    const NodeId n = nl.add_node("n" + std::to_string(i),
                                 AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
    nl.connect_input(n, "a", prev);
    prev = nl.output_net(n, "y");
  }
  nl.add_output("y", prev);
  return nl;
}

TEST(Sta, LongerCombChainsAreSlower) {
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 10, 10);
  double prev_critical = 0.0;
  for (const int depth : {1, 3, 6, 10}) {
    const Netlist nl = comb_chain(depth);
    const PlaceResult placed = place(nl, arch, PlaceParams{});
    const TimingReport t = analyze_timing(nl, placed.placement, nullptr);
    EXPECT_GT(t.critical_path_ns, prev_critical) << "depth " << depth;
    EXPECT_GT(t.fmax_mhz, 0.0);
    EXPECT_EQ(t.critical_logic_levels, depth);
    prev_critical = t.critical_path_ns;
  }
}

TEST(Sta, RegisteredPipelineBreaksThePath) {
  // Same depth, but a registered middle stage cuts the critical path.
  auto build = [](bool registered) {
    Netlist nl("p");
    NetId prev = nl.add_input("x", 16);
    for (int i = 0; i < 6; ++i) {
      const NodeId n = nl.add_node(
          "n" + std::to_string(i),
          AddShiftCfg{16, AddShiftOp::kAdd, 0, registered && i == 3});
      nl.connect_input(n, "a", prev);
      prev = nl.output_net(n, "y");
    }
    nl.add_output("y", prev);
    return nl;
  };
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 10, 10);
  const Netlist comb = build(false);
  const Netlist piped = build(true);
  const PlaceResult p1 = place(comb, arch, PlaceParams{});
  const PlaceResult p2 = place(piped, arch, PlaceParams{});
  EXPECT_LT(analyze_timing(piped, p2.placement, nullptr).critical_path_ns,
            analyze_timing(comb, p1.placement, nullptr).critical_path_ns);
}

TEST(Sta, RoutedDelaysUsedWhenAvailable) {
  const Netlist nl = comb_chain(4);
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 10, 10);
  FlowParams params;
  const CompiledDesign design = compile(nl, arch, params);
  const TimingReport pre = analyze_timing(nl, design.placement, nullptr);
  const TimingReport post = analyze_timing(nl, design.placement, &design.routes);
  EXPECT_GT(post.critical_path_ns, 0.0);
  EXPECT_GT(pre.critical_path_ns, 0.0);
  EXPECT_EQ(post.critical_path_ns, design.timing.critical_path_ns);
}

TEST(Sta, MemoryClustersAreSlowerThanAdders) {
  const DelayModel m;
  MemCfg mem;
  mem.words = 256;
  mem.width = 8;
  EXPECT_GT(m.cluster_delay(mem), m.cluster_delay(AddShiftCfg{16, AddShiftOp::kAdd, 0, false}));
}

TEST(Bitgen, RoundTripPreservesEverything) {
  auto impl = dct::make_mixed_rom();
  const Netlist nl = impl->build_netlist();
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  FlowParams params;
  const CompiledDesign design = compile(nl, arch, params);

  const ExtractedDesign ex = extract_design(arch, design.bitstream);
  EXPECT_EQ(ex.netlist.name(), nl.name());
  ASSERT_EQ(ex.netlist.nodes().size(), nl.nodes().size());
  ASSERT_EQ(ex.netlist.nets().size(), nl.nets().size());
  for (std::size_t i = 0; i < nl.nodes().size(); ++i) {
    EXPECT_EQ(ex.netlist.nodes()[i].name, nl.nodes()[i].name);
    EXPECT_EQ(ex.netlist.nodes()[i].config, nl.nodes()[i].config);
    EXPECT_EQ(ex.netlist.nodes()[i].pins, nl.nodes()[i].pins);
    EXPECT_EQ(ex.placement.node_tile[i], design.placement.node_tile[i]);
  }
  for (std::size_t i = 0; i < nl.nets().size(); ++i) {
    EXPECT_EQ(ex.netlist.nets()[i].width, nl.nets()[i].width);
    EXPECT_EQ(ex.route_trees[i], design.routes.nets[i].tree);
  }
}

TEST(Bitgen, CorruptionIsDetected) {
  auto impl = dct::make_da_basic();
  const Netlist nl = impl->build_netlist();
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  const CompiledDesign design = compile(nl, arch, FlowParams{});

  auto corrupted = design.bitstream;
  corrupted[corrupted.size() / 2] ^= 0x10;
  EXPECT_THROW((void)extract_design(arch, corrupted), std::runtime_error);

  auto truncated = design.bitstream;
  truncated.resize(truncated.size() - 8);
  EXPECT_THROW((void)extract_design(arch, truncated), std::runtime_error);
}

TEST(Bitgen, WrongArchitectureIsRejected) {
  auto impl = dct::make_da_basic();
  const Netlist nl = impl->build_netlist();
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  const CompiledDesign design = compile(nl, arch, FlowParams{});
  const ArrayArch other = ArrayArch::distributed_arithmetic(16, 8);
  EXPECT_THROW((void)extract_design(other, design.bitstream), std::runtime_error);
}

TEST(Bitgen, BitstreamSizeTracksRomContents) {
  // Fig 9's 256-word ROMs hold 16x the memory bits of Fig 8's 16-word ROMs
  // (asserted exactly on the netlists); the serialised streams also order
  // accordingly, though route descriptors and names dilute the ratio.
  const ArrayArch arch = ArrayArch::distributed_arithmetic(12, 8);
  const Netlist full_nl = dct::make_scc_full()->build_netlist();
  const Netlist eo_nl = dct::make_scc_even_odd()->build_netlist();
  EXPECT_EQ(full_nl.rom_bits(), 16 * eo_nl.rom_bits());
  const CompiledDesign full = compile(full_nl, arch, FlowParams{});
  const CompiledDesign eo = compile(eo_nl, arch, FlowParams{});
  EXPECT_GT(full.bitstream_size_bits(), eo.bitstream_size_bits());

  // Configuration-bit accounting (the hardware-meaningful number) is
  // dominated by the memory contents.
  std::int64_t full_bits = 0, eo_bits = 0;
  for (const auto& node : full_nl.nodes()) full_bits += config_bit_count(node.config);
  for (const auto& node : eo_nl.nodes()) eo_bits += config_bit_count(node.config);
  EXPECT_GT(full_bits, 4 * eo_bits);
}

TEST(Flow, InvalidNetlistIsRejected) {
  Netlist nl("bad");
  const NodeId n = nl.add_node("n", AddShiftCfg{16, AddShiftOp::kAdd, 0, false});
  nl.connect_input(n, "a", nl.add_net("undriven", 16));
  const ArrayArch arch = ArrayArch::homogeneous(ClusterKind::kAddShift, 4, 4);
  EXPECT_THROW((void)compile(nl, arch, FlowParams{}), std::runtime_error);
}

}  // namespace
}  // namespace dsra::map
