// Runtime telemetry: span tracing determinism, fabric-track
// well-formedness, exact stall attribution, zero-cost-off bit-exactness,
// histogram percentiles against the shared sample-percentile code path,
// and per-epoch timeline sanity.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "runtime/scheduler.hpp"
#include "runtime/telemetry/export.hpp"
#include "runtime/telemetry/metrics.hpp"
#include "runtime/telemetry/trace.hpp"

namespace dsra::runtime {
namespace {

const KernelLibrary& library() {
  static const KernelLibrary lib;
  return lib;
}

std::vector<StreamJob> mixed_workload(int streams, int frames, int size) {
  const soc::RuntimeCondition conditions[] = {
      {1.0, 1.0},  // -> cordic1
      {0.5, 0.9},  // -> cordic2
      {0.9, 0.3},  // -> mixed_rom
      {0.1, 0.9},  // -> scc_full
  };
  std::vector<StreamJob> jobs;
  jobs.reserve(static_cast<std::size_t>(streams));
  for (int k = 0; k < streams; ++k) {
    StreamConfig cfg;
    cfg.name = "s" + std::to_string(k);
    cfg.width = size;
    cfg.height = size;
    cfg.frame_budget = frames;
    cfg.condition = conditions[k % 4];
    cfg.codec.me_range = 4;
    cfg.seed = 4200 + static_cast<std::uint64_t>(k);
    jobs.push_back(make_synthetic_job(k, cfg));
  }
  return jobs;
}

SchedulerConfig traced_config(DispatchMode mode, telemetry::TraceRecorder* rec,
                              telemetry::MetricsRegistry* metrics = nullptr,
                              int fabrics = 2) {
  SchedulerConfig cfg;
  cfg.fabrics = fabrics;
  cfg.queue.mode = mode;
  cfg.queue.policy = SchedulingPolicy::kAffinityBatched;
  cfg.trace = rec;
  cfg.metrics = metrics;
  return cfg;
}

RunReport traced_run(DispatchMode mode, telemetry::MetricsRegistry* metrics = nullptr,
                     int fabrics = 2) {
  telemetry::TraceRecorder rec;
  auto jobs = mixed_workload(4, 4, 16);
  MultiStreamScheduler scheduler(library(), traced_config(mode, &rec, metrics, fabrics));
  return scheduler.run(jobs);
}

TEST(Telemetry, ModeledCycleTraceIsByteDeterministic) {
  // Two identical runs must export byte-identical modeled-cycle traces.
  // The trace records the schedule that actually ran; with multiple
  // fabrics the job->fabric assignment is a live scheduling decision, so
  // determinism is asserted on a single fabric, where the dispatch order
  // is fully determined by the queue policy and the cycle domain comes
  // from the deterministic sim replay. Host tracks are excluded — wall
  // timestamps legitimately differ between runs.
  const RunReport a =
      traced_run(DispatchMode::kStagePipeline, nullptr, /*fabrics=*/1);
  const RunReport b =
      traced_run(DispatchMode::kStagePipeline, nullptr, /*fabrics=*/1);
  telemetry::TraceExportOptions no_host;
  no_host.include_host_tracks = false;
  ASSERT_FALSE(a.spans.empty());
  EXPECT_EQ(chrome_trace_json(a, no_host), chrome_trace_json(b, no_host));
}

TEST(Telemetry, FabricTrackSpansNestWithoutOverlap) {
  const RunReport report = traced_run(DispatchMode::kStagePipeline);
  ASSERT_FALSE(report.spans.empty());
  // Spans are exported sorted by (track, id, cycle_start); on one fabric
  // track each span must end before the next starts — the silicon does
  // one thing at a time.
  const telemetry::Span* prev = nullptr;
  for (const telemetry::Span& s : report.spans) {
    EXPECT_LE(s.cycle_start, s.cycle_end);
    EXPECT_LE(s.cycle_end, report.sim_makespan_cycles);
    if (s.track != telemetry::TrackKind::kFabric) continue;
    if (prev != nullptr && prev->track_id == s.track_id) {
      EXPECT_LE(prev->cycle_end, s.cycle_start)
          << "overlap on fabric track " << s.track_id;
    }
    prev = &s;
  }
}

TEST(Telemetry, AttributionComponentsSumExactlyToEndToEnd) {
  for (const DispatchMode mode :
       {DispatchMode::kMonolithicFrames, DispatchMode::kStagePipeline}) {
    const RunReport report = traced_run(mode);
    ASSERT_EQ(report.attribution.size(), report.streams.size());
    for (const telemetry::StreamAttribution& a : report.attribution) {
      EXPECT_EQ(a.components_sum(), a.end_to_end_cycles)
          << "stream " << a.stream_id << " under " << report.mode;
      EXPECT_GT(a.compute_cycles, 0u) << "stream " << a.stream_id;
      EXPECT_LE(a.end_to_end_cycles, report.sim_makespan_cycles);
    }
  }
}

TEST(Telemetry, TracingIsZeroCostOffAndBitExactOn) {
  // Modeled results must be bit-identical with tracing off and on:
  // recording only observes. The comparison runs on a single fabric so
  // the dispatch order — and with it every modeled cycle count — is
  // deterministic; on a multi-fabric pool the job->fabric assignment is
  // a live scheduling decision that varies run to run with or without
  // tracing.
  auto plain_jobs = mixed_workload(4, 4, 16);
  SchedulerConfig plain;
  plain.fabrics = 1;
  plain.queue.mode = DispatchMode::kStagePipeline;
  plain.queue.policy = SchedulingPolicy::kAffinityBatched;
  const RunReport off = MultiStreamScheduler(library(), plain).run(plain_jobs);
  EXPECT_TRUE(off.spans.empty());
  EXPECT_TRUE(off.attribution.empty());

  telemetry::TraceRecorder rec;
  auto traced_jobs = mixed_workload(4, 4, 16);
  MultiStreamScheduler scheduler(
      library(), traced_config(DispatchMode::kStagePipeline, &rec, nullptr,
                               /*fabrics=*/1));
  const RunReport on = scheduler.run(traced_jobs);

  EXPECT_EQ(off.sim_makespan_cycles, on.sim_makespan_cycles);
  EXPECT_EQ(off.total_reconfig_cycles, on.total_reconfig_cycles);
  ASSERT_EQ(plain_jobs.size(), traced_jobs.size());
  for (std::size_t s = 0; s < plain_jobs.size(); ++s) {
    ASSERT_EQ(plain_jobs[s].records.size(), traced_jobs[s].records.size());
    for (std::size_t f = 0; f < plain_jobs[s].records.size(); ++f) {
      EXPECT_EQ(plain_jobs[s].records[f].stats.bits, traced_jobs[s].records[f].stats.bits);
      EXPECT_EQ(plain_jobs[s].records[f].stats.psnr_db,
                traced_jobs[s].records[f].stats.psnr_db);
    }
  }
}

TEST(Telemetry, MetricsOnlyRequestStillYieldsSpansAndHistograms) {
  telemetry::MetricsRegistry metrics;
  const RunReport report = traced_run(DispatchMode::kStagePipeline, &metrics);
  EXPECT_FALSE(report.spans.empty());
  EXPECT_GT(metrics.counters().at("frames"), 0u);
  EXPECT_GT(metrics.histograms().at("stage_compute_cycles").count(), 0u);
  EXPECT_GT(metrics.histograms().at("queue_wait_cycles").count(), 0u);
  // Epoch timelines: one utilization track per fabric, each sample a
  // fraction, plus the queue-depth track.
  const auto& timelines = metrics.timelines();
  ASSERT_EQ(timelines.count("queue_depth"), 1u);
  for (int f = 0; f < report.fabrics; ++f) {
    const auto it = timelines.find("fabric" + std::to_string(f) + "_utilization");
    ASSERT_NE(it, timelines.end());
    EXPECT_EQ(it->second.size(), 32u);
    for (const double u : it->second) {
      EXPECT_GE(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
  for (const double d : timelines.at("queue_depth")) EXPECT_GE(d, 0.0);
  // The metrics export must be valid JSON-shaped text with the schema
  // stamp; full validation is tools/validate_trace.py's job in CI.
  const std::string json = telemetry::metrics_json(metrics, report.wall_seconds);
  EXPECT_NE(json.find("\"schema_version\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait_cycles\""), std::string::npos);
}

TEST(Telemetry, HistogramPercentilesShareTheSamplePercentileContract) {
  // With one sample per bucket the interpolation collapses to the bucket
  // bound, so the histogram must agree exactly with the sample-based
  // nearest-rank percentile (the shared percentile_rank code path).
  telemetry::FixedBucketHistogram hist({1.0, 2.0, 3.0, 4.0, 5.0});
  const std::vector<double> samples = {1.0, 2.0, 3.0, 4.0, 5.0};
  for (const double v : samples) hist.record(v);
  for (const double pct : {0.0, 25.0, 50.0, 95.0, 100.0})
    EXPECT_DOUBLE_EQ(hist.percentile(pct), percentile(samples, pct)) << "pct " << pct;
}

TEST(Telemetry, HistogramDegenerateCasesAreExact) {
  telemetry::FixedBucketHistogram empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_DOUBLE_EQ(empty.percentile(50.0), 0.0);
  EXPECT_DOUBLE_EQ(empty.min(), 0.0);
  EXPECT_DOUBLE_EQ(empty.max(), 0.0);

  telemetry::FixedBucketHistogram single;
  single.record(7.5);
  for (const double pct : {0.0, 50.0, 99.0, 100.0})
    EXPECT_DOUBLE_EQ(single.percentile(pct), 7.5) << "pct " << pct;

  // Non-finite pct collapses to the conservative end (the max), and
  // non-finite samples are dropped instead of poisoning min/max/sum.
  telemetry::FixedBucketHistogram h;
  h.record(2.0);
  h.record(8.0);
  EXPECT_DOUBLE_EQ(h.percentile(std::numeric_limits<double>::quiet_NaN()), 8.0);
  h.record(std::numeric_limits<double>::infinity());
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.max(), 8.0);
}

TEST(Telemetry, OverflowBucketPercentileClampsToObservedSamples) {
  // Regression: a percentile resolving in the unbounded top bucket used
  // to interpolate over [last bound, max]. With the overflow samples
  // clustered far above the last bound, that *understated* the tail —
  // the p99 a bench would gate on read lower than any sample actually
  // past the bound. The overflow bucket must clamp to the smallest
  // sample observed in it.
  telemetry::FixedBucketHistogram hist(
      {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0, 1024.0});
  for (int i = 0; i < 100; ++i) hist.record(4.0);
  for (int i = 0; i < 100; ++i) hist.record(1e6);  // clustered far past 1024

  EXPECT_EQ(hist.overflow_count(), 100u);
  EXPECT_DOUBLE_EQ(hist.overflow_min(), 1e6);
  // Rank 198 of 200 lands in the overflow bucket; every sample there is
  // 1e6, so the estimate must be exactly 1e6 — not a value interpolated
  // down toward the 1024 bound.
  EXPECT_DOUBLE_EQ(hist.percentile(99.0), 1e6);
  EXPECT_GE(hist.percentile(95.0), 1e6);

  // No overflow -> no overflow accounting.
  telemetry::FixedBucketHistogram bounded({10.0, 20.0});
  bounded.record(5.0);
  EXPECT_EQ(bounded.overflow_count(), 0u);
  EXPECT_DOUBLE_EQ(bounded.overflow_min(), 0.0);

  // The widened default bounds keep overload-scale cycle counts out of
  // the overflow bucket in the first place.
  EXPECT_EQ(telemetry::FixedBucketHistogram::default_bounds().size(), 56u);
}

TEST(Telemetry, MetricsJsonCarriesOverflowAccounting) {
  telemetry::MetricsRegistry registry;
  auto& h = registry.histogram("lat", {1.0, 2.0});
  h.record(1.0);
  h.record(50.0);
  const std::string json = telemetry::metrics_json(registry, 0.0);
  EXPECT_NE(json.find("\"overflow\": {\"count\": 1, \"min\": 50"), std::string::npos);
}

TEST(Telemetry, ChromeTraceExportCarriesTracksAndMetadata) {
  const RunReport report = traced_run(DispatchMode::kStagePipeline);
  const std::string json = telemetry::chrome_trace_json(report);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("modeled fabrics"), std::string::npos);
  EXPECT_NE(json.find("modeled streams"), std::string::npos);
  EXPECT_NE(json.find("host workers"), std::string::npos);
  EXPECT_NE(json.find("\"stage_compute\""), std::string::npos);
  EXPECT_NE(json.find("\"queue_wait\""), std::string::npos);
  for (const std::string& label : report.fabric_labels)
    EXPECT_NE(json.find(label), std::string::npos);
  // Host tracks off removes the host worker process but keeps the
  // modeled tracks.
  telemetry::TraceExportOptions no_host;
  no_host.include_host_tracks = false;
  const std::string modeled_only = telemetry::chrome_trace_json(report, no_host);
  EXPECT_EQ(modeled_only.find("host workers"), std::string::npos);
  EXPECT_NE(modeled_only.find("modeled fabrics"), std::string::npos);
}

}  // namespace
}  // namespace dsra::runtime
