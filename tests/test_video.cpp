// Video substrate: frames, synthetic sequences, metrics, quantisation
// (including the scaled-DCT folding) and the toy encoder loop.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.hpp"
#include "me/fast_search.hpp"
#include "me/systolic.hpp"
#include "video/codec.hpp"
#include "video/synthetic.hpp"

namespace dsra::video {
namespace {

TEST(Frame, ClampedAccess) {
  Frame f(4, 3);
  f.set(0, 0, 10);
  f.set(3, 2, 99);
  EXPECT_EQ(f.clamped_at(-5, -5), 10);
  EXPECT_EQ(f.clamped_at(100, 100), 99);
  EXPECT_EQ(f.at(3, 2), 99);
}

TEST(Frame, PgmRoundTrip) {
  Rng rng(1);
  const Frame f = textured_frame(24, 16, 4, rng);
  const std::string path = testing::TempDir() + "dsra_frame_test.pgm";
  f.save_pgm(path);
  const Frame g = Frame::load_pgm(path);
  EXPECT_EQ(g.width(), f.width());
  EXPECT_EQ(g.height(), f.height());
  EXPECT_EQ(g.data(), f.data());
  std::remove(path.c_str());
}

TEST(Synthetic, DeterministicFromSeed) {
  SyntheticConfig cfg;
  cfg.frames = 2;
  const auto a = generate_sequence(cfg);
  const auto b = generate_sequence(cfg);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].data(), b[i].data());
  cfg.seed += 1;
  const auto c = generate_sequence(cfg);
  EXPECT_NE(a[0].data(), c[0].data());
}

TEST(Synthetic, PanIsVisibleInFrameDifferences) {
  SyntheticConfig cfg;
  cfg.frames = 2;
  cfg.noise_sigma = 0.0;
  cfg.objects.clear();
  const auto frames = generate_sequence(cfg);
  // Frame 1 equals frame 0 shifted by (pan_x, pan_y) in the interior.
  int mismatches = 0;
  for (int y = 10; y < cfg.height - 10; ++y)
    for (int x = 10; x < cfg.width - 10; ++x)
      if (frames[1].at(x, y) != frames[0].at(x + cfg.pan_x, y + cfg.pan_y)) ++mismatches;
  EXPECT_EQ(mismatches, 0);
}

TEST(Metrics, PsnrBehaviour) {
  Rng rng(2);
  const Frame f = textured_frame(32, 32, 4, rng);
  EXPECT_EQ(psnr(f, f), 99.0);
  Frame noisy = f;
  for (auto& p : noisy.data())
    p = static_cast<std::uint8_t>(std::clamp(static_cast<int>(p) + static_cast<int>(rng.next_range(-5, 5)), 0, 255));
  const double p1 = psnr(f, noisy);
  EXPECT_GT(p1, 25.0);
  EXPECT_LT(p1, 99.0);
}

TEST(Quant, RoundTripErrorBoundedByHalfStep) {
  Rng rng(3);
  const QuantMatrix q = QuantMatrix::flat(4.0);
  RBlock coeffs{};
  for (auto& row : coeffs)
    for (auto& v : row) v = rng.next_double() * 200.0 - 100.0;
  const RBlock back = dequantize(quantize(coeffs, q), q);
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v)
      EXPECT_LE(std::abs(back[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] -
                         coeffs[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)]),
                2.0 + 1e-9);
}

TEST(Quant, MpegMatrixCoarsensHighFrequencies) {
  const QuantMatrix q = QuantMatrix::mpeg_intra(8.0);
  EXPECT_LT(q.step[0][0], q.step[7][7]);
  EXPECT_LT(q.step[0][0], q.step[0][7]);
}

TEST(Quant, FoldedMatrixEqualsScalingTheCoefficients) {
  // Quantising g-scaled coefficients with the folded matrix must give the
  // same levels as quantising true coefficients with the base matrix -
  // the paper's "combined with the quantization constants" claim.
  Rng rng(4);
  const QuantMatrix base = QuantMatrix::mpeg_intra(6.0);
  std::array<double, 8> g_row{}, g_col{};
  for (auto& g : g_row) g = 0.5 + rng.next_double();
  for (auto& g : g_col) g = 0.5 + rng.next_double();
  const QuantMatrix folded = base.folded(g_row, g_col);
  for (int trial = 0; trial < 50; ++trial) {
    RBlock truth{}, scaled{};
    for (int u = 0; u < 8; ++u)
      for (int v = 0; v < 8; ++v) {
        const double x = rng.next_double() * 400.0 - 200.0;
        truth[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = x;
        scaled[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] =
            x * g_row[static_cast<std::size_t>(u)] * g_col[static_cast<std::size_t>(v)];
      }
    EXPECT_EQ(quantize(scaled, folded), quantize(truth, base));
  }
}

TEST(Quant, ZigzagVisitsEveryCellOnce) {
  const auto& order = zigzag_order();
  std::set<std::pair<int, int>> seen(order.begin(), order.end());
  EXPECT_EQ(seen.size(), 64u);
  EXPECT_EQ(order[0], (std::pair<int, int>{0, 0}));
  EXPECT_EQ(order[1], (std::pair<int, int>{0, 1}));
  EXPECT_EQ(order[2], (std::pair<int, int>{1, 0}));
  EXPECT_EQ(order[63], (std::pair<int, int>{7, 7}));
}

TEST(Quant, BitEstimateMonotoneInContent) {
  QBlock empty{};
  QBlock sparse{};
  sparse[0][0] = 5;
  QBlock dense{};
  for (int u = 0; u < 8; ++u)
    for (int v = 0; v < 8; ++v) dense[static_cast<std::size_t>(u)][static_cast<std::size_t>(v)] = 9;
  EXPECT_LT(estimate_block_bits(empty), estimate_block_bits(sparse));
  EXPECT_LT(estimate_block_bits(sparse), estimate_block_bits(dense));
}

TEST(Codec, IntraReconstructionQualityImprovesWithFinerQuantiser) {
  SyntheticConfig scfg;
  scfg.width = 48;
  scfg.height = 48;
  scfg.frames = 1;
  const auto frames = generate_sequence(scfg);

  double prev_psnr = 0.0;
  double prev_bits = 0.0;
  for (const double qs : {16.0, 8.0, 2.0}) {
    CodecConfig cfg;
    cfg.quantiser_scale = qs;
    const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);
    Frame recon;
    const FrameStats stats = enc.encode_intra(frames[0], recon);
    EXPECT_GT(stats.psnr_db, prev_psnr) << "finer quantiser must raise PSNR";
    EXPECT_GT(stats.bits, prev_bits) << "finer quantiser must cost more bits";
    prev_psnr = stats.psnr_db;
    prev_bits = stats.bits;
  }
  EXPECT_GT(prev_psnr, 34.0);
}

TEST(Codec, InterFramesCheaperThanIntraOnPannedContent) {
  SyntheticConfig scfg;
  scfg.width = 64;
  scfg.height = 64;
  scfg.frames = 3;
  const auto frames = generate_sequence(scfg);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);
  const auto stats = enc.encode_sequence(frames);
  ASSERT_EQ(stats.size(), 3u);
  EXPECT_LT(stats[1].bits, stats[0].bits) << "motion compensation must pay off";
  EXPECT_GT(stats[1].psnr_db, 28.0);
  EXPECT_GT(stats[1].mean_abs_mv, 0.0) << "panned content has non-zero motion";
}

TEST(Codec, FrameAtATimeMatchesEncodeSequence) {
  SyntheticConfig scfg;
  scfg.width = 48;
  scfg.height = 48;
  scfg.frames = 3;
  const auto frames = generate_sequence(scfg);
  CodecConfig cfg;
  const ToyEncoder enc(nullptr, me::systolic_search_fn(), cfg);

  const auto batch = enc.encode_sequence(frames);
  Frame recon_state;  // empty -> first encode_frame call is intra
  ASSERT_EQ(batch.size(), frames.size());
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const FrameStats step = enc.encode_frame(frames[k], recon_state);
    EXPECT_DOUBLE_EQ(step.bits, batch[k].bits) << k;
    EXPECT_DOUBLE_EQ(step.psnr_db, batch[k].psnr_db) << k;
    EXPECT_EQ(step.blocks_coded, batch[k].blocks_coded) << k;
  }
}

TEST(Codec, ArrayDctImplementationsMatchReferencePsnrClosely) {
  SyntheticConfig scfg;
  scfg.width = 48;
  scfg.height = 48;
  scfg.frames = 2;
  const auto frames = generate_sequence(scfg);
  CodecConfig cfg;
  const ToyEncoder ref_enc(nullptr, me::systolic_search_fn(), cfg);
  const auto ref_stats = ref_enc.encode_sequence(frames);

  for (const auto& impl : dct::all_implementations(dct::DaPrecision::wide())) {
    const ToyEncoder enc(impl.get(), me::systolic_search_fn(), cfg);
    const auto stats = enc.encode_sequence(frames);
    EXPECT_NEAR(stats[1].psnr_db, ref_stats[1].psnr_db, 0.6) << impl->name();
    EXPECT_GT(stats[1].dct_array_cycles, 0u) << impl->name();
  }
}

}  // namespace
}  // namespace dsra::video
