#!/usr/bin/env python3
"""Schema validator for the runtime's live-health dump (HEALTH_*.json).

A health dump is what ``HealthMonitor::dump`` / ``serve_streams
--health-dump`` writes: the watchdog configuration, the per-epoch
HealthSnapshot sequence, every watchdog trip, and the flight recorder's
surviving events. Beyond shape checks, the semantic invariants the
runtime promises are enforced:

  * snapshot epochs are strictly monotone (the sampler never reuses or
    reorders an epoch);
  * queue completions and dispatches never move backwards across epochs;
  * SLA burn rates are finite and in [0, inf); utilization and cache
    pressure are fractions in [0, 1];
  * anomalies_total equals the number of recorded trips, and every trip
    names a known watchdog;
  * flight-recorder sequence numbers are strictly increasing and the
    surviving event count respects the per-ring capacity.

Usage:
    python3 tools/validate_health.py HEALTH_*.json

Exits non-zero if any file is malformed; CI runs this over every health
artifact the bench/serve steps produced.
"""

import json
import math
import sys

HEALTH_SCHEMA_VERSION = 1
EVENT_KINDS = {"dispatch", "steal", "reconfig", "shed", "rung_transition",
               "watchdog_trip"}
WATCHDOG_KINDS = {"stall", "queue_growth", "starvation", "sla_burn"}
WATCHDOG_CONFIG_KEYS = ("stall_epochs", "growth_epochs", "growth_min_depth",
                        "starvation_age_bound", "burn_threshold", "burn_warmup")


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def is_count(v):
    return isinstance(v, int) and not isinstance(v, bool) and v >= 0


def validate_queue(q, where):
    require(isinstance(q, dict), f"{where}: queue must be an object")
    for key in ("depth", "oldest_age", "dispatches", "completions", "steals",
                "batches"):
        require(is_count(q.get(key)),
                f"{where}: queue.{key} must be a non-negative int")
    shards = q.get("shards")
    require(isinstance(shards, list), f"{where}: queue.shards must be a list")
    for s in shards:
        require(isinstance(s, dict) and is_count(s.get("depth")) and
                is_count(s.get("oldest_age")) and is_count(s.get("shard")),
                f"{where}: malformed shard entry")


def validate_snapshot(snap, i, fabric_count):
    where = f"snapshot {i}"
    require(isinstance(snap, dict), f"{where} is not an object")
    require(is_count(snap.get("epoch")) and snap["epoch"] >= 1,
            f"{where}: epoch must be an int >= 1")
    require(is_count(snap.get("t_ns")), f"{where}: t_ns must be a non-negative int")
    require(is_num(snap.get("modeled_now_cycles")) and snap["modeled_now_cycles"] >= 0,
            f"{where}: modeled_now_cycles must be non-negative")
    require(is_count(snap.get("inflight_jobs")),
            f"{where}: inflight_jobs must be a non-negative int")
    validate_queue(snap.get("queue"), where)

    fabrics = snap.get("fabrics")
    require(isinstance(fabrics, list) and len(fabrics) == fabric_count,
            f"{where}: fabrics must be a list of {fabric_count} entries")
    for f in fabrics:
        require(isinstance(f, dict), f"{where}: fabric entry is not an object")
        for key in ("utilization", "cache_pressure"):
            v = f.get(key)
            require(is_num(v) and 0.0 <= v <= 1.0,
                    f"{where}: fabric {f.get('fabric')}: {key} must be in [0, 1]")
        for key in ("jobs_done", "cache_hits", "cache_misses", "switches"):
            require(is_count(f.get(key)),
                    f"{where}: fabric {f.get('fabric')}: {key} must be a "
                    f"non-negative int")

    streams = snap.get("streams")
    require(isinstance(streams, list), f"{where}: streams must be a list")
    for s in streams:
        require(isinstance(s, dict), f"{where}: stream entry is not an object")
        sid = s.get("stream")
        require(is_count(sid), f"{where}: stream id must be a non-negative int")
        require(isinstance(s.get("shed"), bool), f"{where}: stream {sid}: shed must be bool")
        burn = s.get("burn_rate")
        require(is_num(burn) and math.isfinite(burn) and burn >= 0.0,
                f"{where}: stream {sid}: burn_rate must be finite and in [0, inf)")
        for key in ("consumed_cycles", "total_cycles", "deadline_cycles",
                    "projected_completion_cycles"):
            require(is_num(s.get(key)) and s[key] >= 0,
                    f"{where}: stream {sid}: {key} must be non-negative")
        require(is_count(s.get("frames_done")) and is_count(s.get("frames_total")),
                f"{where}: stream {sid}: frame counts must be non-negative ints")
        require(s["frames_done"] <= s["frames_total"] or s["frames_total"] == 0,
                f"{where}: stream {sid}: frames_done exceeds frames_total")


def validate_flight(fr, fabric_count):
    require(isinstance(fr, dict), "flight_recorder must be an object")
    capacity = fr.get("capacity_per_ring")
    require(is_count(capacity) and capacity > 0,
            "flight_recorder.capacity_per_ring must be a positive int")
    require(is_count(fr.get("recorded")) and is_count(fr.get("dropped")),
            "flight_recorder.recorded/dropped must be non-negative ints")
    events = fr.get("events")
    require(isinstance(events, list), "flight_recorder.events must be a list")
    # fabric rings + one control ring bound the surviving event count.
    require(len(events) <= capacity * (fabric_count + 1),
            "flight_recorder: more surviving events than ring capacity allows")
    prev_seq = 0
    for i, e in enumerate(events):
        require(isinstance(e, dict), f"flight event {i} is not an object")
        require(e.get("kind") in EVENT_KINDS,
                f"flight event {i}: unknown kind {e.get('kind')!r}")
        require(is_count(e.get("seq")) and e["seq"] > prev_seq,
                f"flight event {i}: seq must be strictly increasing")
        prev_seq = e["seq"]
        require(is_count(e.get("t_ns")), f"flight event {i}: t_ns must be non-negative")
        require(is_count(e.get("ring")) and e["ring"] <= fabric_count,
                f"flight event {i}: ring out of range")
        require(isinstance(e.get("stream"), int) and isinstance(e.get("frame"), int),
                f"flight event {i}: stream/frame must be ints")
        require(is_count(e.get("value")), f"flight event {i}: value must be non-negative")


def validate_health(doc):
    require(doc.get("kind") == "health", 'kind must be "health"')
    require(doc.get("schema_version") == HEALTH_SCHEMA_VERSION,
            f"schema_version must be {HEALTH_SCHEMA_VERSION}")
    require(is_num(doc.get("host_wall_seconds")) and doc["host_wall_seconds"] >= 0,
            "host_wall_seconds must be a non-negative number")
    fabric_count = doc.get("fabrics")
    require(is_count(fabric_count), "fabrics must be a non-negative int")
    require(is_count(doc.get("anomalies_total")),
            "anomalies_total must be a non-negative int")
    require(is_count(doc.get("snapshots_evicted")),
            "snapshots_evicted must be a non-negative int")

    cfg = doc.get("watchdog_config")
    require(isinstance(cfg, dict), "watchdog_config must be an object")
    for key in WATCHDOG_CONFIG_KEYS:
        require(is_num(cfg.get(key)) and cfg[key] >= 0,
                f"watchdog_config.{key} must be a non-negative number")

    snapshots = doc.get("snapshots")
    require(isinstance(snapshots, list), "snapshots must be a list")
    prev_epoch = 0
    prev_completions = prev_dispatches = 0
    for i, snap in enumerate(snapshots):
        validate_snapshot(snap, i, fabric_count)
        require(snap["epoch"] > prev_epoch,
                f"snapshot {i}: epoch {snap['epoch']} not strictly monotone "
                f"after {prev_epoch}")
        prev_epoch = snap["epoch"]
        q = snap["queue"]
        require(q["completions"] >= prev_completions,
                f"snapshot {i}: completions moved backwards")
        require(q["dispatches"] >= prev_dispatches,
                f"snapshot {i}: dispatches moved backwards")
        prev_completions, prev_dispatches = q["completions"], q["dispatches"]

    trips = doc.get("trips")
    require(isinstance(trips, list), "trips must be a list")
    require(doc["anomalies_total"] == len(trips),
            f"anomalies_total {doc['anomalies_total']} disagrees with "
            f"{len(trips)} recorded trips")
    for i, t in enumerate(trips):
        require(isinstance(t, dict), f"trip {i} is not an object")
        require(t.get("kind") in WATCHDOG_KINDS,
                f"trip {i}: unknown watchdog kind {t.get('kind')!r}")
        require(is_count(t.get("epoch")) and t["epoch"] >= 1,
                f"trip {i}: epoch must be an int >= 1")
        require(isinstance(t.get("stream"), int), f"trip {i}: stream must be an int")
        require(isinstance(t.get("detail"), str), f"trip {i}: detail must be a string")

    validate_flight(doc.get("flight_recorder"), fabric_count)


def validate_file(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    require(isinstance(doc, dict), "top level must be an object")
    validate_health(doc)


def main(argv):
    if len(argv) < 2:
        print("usage: validate_health.py <HEALTH_*.json> [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            validate_file(path)
        except (Invalid, json.JSONDecodeError, OSError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path} (health)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
