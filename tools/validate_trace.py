#!/usr/bin/env python3
"""Schema validator for the repo's telemetry and bench JSON artifacts.

Dispatches on content:

  * ``traceEvents``            -> Chrome trace-event JSON (telemetry schema v1)
  * ``counters``               -> metrics JSON (telemetry schema v1)
  * ``bench``                  -> BENCH_*.json (bench schema v2)

Usage:
    python3 tools/validate_trace.py BENCH_*.json TRACE_*.json METRICS_*.json

Exits non-zero if any file is malformed; CI runs this over every artifact
the bench step produced so a schema regression fails the build instead of
silently shipping a trace Perfetto cannot open.
"""

import json
import sys

TELEMETRY_SCHEMA_VERSION = 1
BENCH_SCHEMA_VERSION = 2
SPAN_NAMES = {
    "dispatch",
    "queue_wait",
    "reconfig_full",
    "reconfig_delta",
    "cache_fetch",
    "stage_compute",
}
PID_MODELED_FABRICS = 1


class Invalid(Exception):
    pass


def require(cond, msg):
    if not cond:
        raise Invalid(msg)


def is_num(v):
    return isinstance(v, (int, float)) and not isinstance(v, bool)


def validate_trace(doc):
    events = doc.get("traceEvents")
    require(isinstance(events, list) and events, "traceEvents must be a non-empty list")
    other = doc.get("otherData")
    require(isinstance(other, dict), "otherData must be an object")
    require(
        other.get("schema_version") == TELEMETRY_SCHEMA_VERSION,
        f"otherData.schema_version must be {TELEMETRY_SCHEMA_VERSION}",
    )
    for key in ("modeled_time_unit", "policy", "mode", "fabrics", "streams",
                "makespan_cycles"):
        require(key in other, f"otherData.{key} missing")

    fabric_tracks = {}
    for i, e in enumerate(events):
        require(isinstance(e, dict), f"event {i} is not an object")
        ph = e.get("ph")
        require(ph in ("M", "X"), f"event {i}: unknown ph {ph!r}")
        if ph == "M":
            require(e.get("name") in ("process_name", "thread_name"),
                    f"event {i}: unknown metadata name {e.get('name')!r}")
            require(isinstance(e.get("args"), dict) and "name" in e["args"],
                    f"event {i}: metadata args.name missing")
            continue
        for key in ("pid", "tid", "ts", "dur"):
            require(is_num(e.get(key)), f"event {i}: {key} must be a number")
        require(e.get("name") in SPAN_NAMES,
                f"event {i}: unknown span name {e.get('name')!r}")
        require(e["dur"] >= 0 and e["ts"] >= 0,
                f"event {i}: negative ts/dur")
        if e["pid"] == PID_MODELED_FABRICS:
            fabric_tracks.setdefault(e["tid"], []).append((e["ts"], e["dur"], i))

    # The modeled fabric does one thing at a time: spans on one fabric
    # track must not overlap.
    for tid, spans in fabric_tracks.items():
        spans.sort()
        for (a_ts, a_dur, a_i), (b_ts, _, b_i) in zip(spans, spans[1:]):
            require(a_ts + a_dur <= b_ts,
                    f"fabric track {tid}: events {a_i} and {b_i} overlap")


def validate_metrics(doc):
    require(
        doc.get("schema_version") == TELEMETRY_SCHEMA_VERSION,
        f"schema_version must be {TELEMETRY_SCHEMA_VERSION}",
    )
    require(is_num(doc.get("host_wall_seconds")) and doc["host_wall_seconds"] >= 0,
            "host_wall_seconds must be a non-negative number")
    # Timeline-cap accounting: samples truncated by the epoch cap are
    # counted, not silently discarded, so the exporter must carry the
    # count (0 when nothing was dropped).
    dropped = doc.get("epochs_dropped")
    require(isinstance(dropped, int) and not isinstance(dropped, bool) and dropped >= 0,
            "epochs_dropped must be a non-negative int")
    for section in ("counters", "gauges", "histograms", "timelines"):
        require(isinstance(doc.get(section), dict), f"{section} must be an object")
    for name, v in doc["counters"].items():
        require(isinstance(v, int) and v >= 0, f"counter {name} must be a non-negative int")
    for name, v in doc["gauges"].items():
        require(is_num(v), f"gauge {name} must be a number")
    for name, h in doc["histograms"].items():
        require(isinstance(h, dict), f"histogram {name} must be an object")
        for key in ("count", "sum", "min", "max", "p50", "p95", "p99"):
            require(is_num(h.get(key)), f"histogram {name}.{key} must be a number")
        buckets = h.get("buckets")
        require(isinstance(buckets, list), f"histogram {name}.buckets must be a list")
        total = 0
        overflow_bucket = 0
        for b in buckets:
            require(isinstance(b, dict) and isinstance(b.get("count"), int),
                    f"histogram {name}: bucket counts must be ints")
            require(b.get("le") is None or is_num(b["le"]),
                    f"histogram {name}: bucket le must be a number or null (overflow)")
            total += b["count"]
            if b.get("le") is None:
                overflow_bucket += b["count"]
        require(total == h["count"],
                f"histogram {name}: bucket counts sum to {total}, count says {h['count']}")
        overflow = h.get("overflow")
        if overflow is not None:
            require(isinstance(overflow, dict) and
                    isinstance(overflow.get("count"), int) and overflow["count"] >= 0 and
                    is_num(overflow.get("min")),
                    f"histogram {name}.overflow must be {{count: int, min: number}}")
            require(overflow["count"] == overflow_bucket,
                    f"histogram {name}: overflow.count {overflow['count']} disagrees with "
                    f"the null-le bucket count {overflow_bucket}")
        # Overflow-distortion check: when the p99 rank lands in the
        # unbounded top bucket, a percentile interpolated over
        # [last bound, max] understates clustered-high tails. Such an
        # export must carry the overflow accounting, and its p99 must sit
        # inside [overflow.min, max] — the only honest range up there.
        if total > 0 and overflow_bucket > 0:
            rank99 = max(1, -(-99 * total // 100))  # ceil, nearest-rank
            if rank99 > total - overflow_bucket:
                require(overflow is not None,
                        f"histogram {name}: p99 resolves in the overflow bucket but the "
                        f"export carries no overflow accounting — the percentile is "
                        f"distorted by top-bucket saturation")
                require(overflow["min"] <= h["p99"] <= h["max"],
                        f"histogram {name}: p99 {h['p99']} outside the overflow range "
                        f"[{overflow['min']}, {h['max']}] — top-bucket saturation distorts it")
    for name, samples in doc["timelines"].items():
        require(isinstance(samples, list) and all(is_num(s) for s in samples),
                f"timeline {name} must be a list of numbers")


def validate_bench(doc):
    require(isinstance(doc.get("bench"), str) and doc["bench"],
            "bench must be a non-empty string")
    require(
        doc.get("schema_version") == BENCH_SCHEMA_VERSION,
        f"schema_version must be {BENCH_SCHEMA_VERSION}",
    )
    require(is_num(doc.get("host_wall_seconds")) and doc["host_wall_seconds"] >= 0,
            "host_wall_seconds must be a non-negative number")
    # Reproducibility stamp (schema v2, additive): every bench must carry
    # the RNG seed its workload was drawn from and a digest of its
    # configuration, so a perf delta between two CI runs can be told
    # apart from a workload change.
    seed = doc.get("rng_seed")
    require(isinstance(seed, int) and not isinstance(seed, bool) and seed >= 0,
            "rng_seed must be a non-negative int")
    digest = doc.get("config_digest")
    require(isinstance(digest, str) and digest,
            "config_digest must be a non-empty string")
    require(isinstance(doc.get("metrics"), dict), "metrics must be an object")
    for name, v in doc["metrics"].items():
        require(v is None or is_num(v), f"metric {name} must be a number or null")
    bars = doc.get("bars")
    require(isinstance(bars, list), "bars must be a list")
    for i, b in enumerate(bars):
        require(isinstance(b, dict), f"bar {i} is not an object")
        require(isinstance(b.get("name"), str), f"bar {i}: name must be a string")
        require(is_num(b.get("value")) and is_num(b.get("threshold")),
                f"bar {b.get('name', i)}: value/threshold must be numbers")
        require(b.get("op") in (">=", "<=", ">"), f"bar {b.get('name', i)}: unknown op")
        require(isinstance(b.get("pass"), bool), f"bar {b.get('name', i)}: pass must be bool")
    require(isinstance(doc.get("pass"), bool), "pass must be bool")


def validate_file(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    require(isinstance(doc, dict), "top level must be an object")
    if "traceEvents" in doc:
        kind = "trace"
        validate_trace(doc)
    elif "counters" in doc:
        kind = "metrics"
        validate_metrics(doc)
    elif "bench" in doc:
        kind = "bench"
        validate_bench(doc)
    else:
        raise Invalid("unrecognized document: no traceEvents/counters/bench key")
    return kind


def main(argv):
    if len(argv) < 2:
        print("usage: validate_trace.py <artifact.json> [...]", file=sys.stderr)
        return 2
    failures = 0
    for path in argv[1:]:
        try:
            kind = validate_file(path)
        except (Invalid, json.JSONDecodeError, OSError) as err:
            print(f"FAIL {path}: {err}", file=sys.stderr)
            failures += 1
        else:
            print(f"ok   {path} ({kind})")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
